package qoe

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/participant"
	"repro/internal/population"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/study"
	"repro/internal/sweep"
	"repro/internal/video"
	"repro/internal/webpage"
)

// resolveSite looks a site up in the corpus.
func resolveSite(name string) (*webpage.Site, error) {
	site := webpage.ByName(name)
	if site == nil {
		return nil, fmt.Errorf("qoe: unknown site %q (the corpus has %d sites; see Sites())", name, len(webpage.Corpus()))
	}
	return site, nil
}

// resolveNetwork resolves a Table 2 or scenario-library name.
func resolveNetwork(name string) (simnet.NetworkConfig, error) {
	net, err := simnet.ScenarioByName(name)
	if err != nil {
		return simnet.NetworkConfig{}, fmt.Errorf("qoe: unknown network %q (have: %v)", name, NetworkNames())
	}
	return net, nil
}

// resolveProtocol resolves a Table 1 stack name against a network.
func resolveProtocol(name string, net simnet.NetworkConfig) (httpsim.Protocol, error) {
	proto, err := core.Protocol(name, net)
	if err != nil {
		return nil, fmt.Errorf("qoe: %w (have: %v)", err, ProtocolNames())
	}
	return proto, nil
}

// PageLoad describes one page load.
type PageLoad struct {
	Site     string
	Network  string // Table 2 or scenario-library name
	Protocol string // Table 1 stack name
	Seed     int64
	// MaxLoadTime aborts pathological loads; zero keeps the loader default.
	MaxLoadTime time.Duration
}

// TracePoint is one sample of the visual-progress trace.
type TracePoint struct {
	T  time.Duration
	VC float64 // visual completeness, 0..1
}

// PageResult is the outcome of one page load: the paper's visual metrics
// plus the transport counters.
type PageResult struct {
	Site, Network, Protocol string

	FVC, SI, VC85, LVC, PLT time.Duration
	Complete                bool

	Objects, ObjectsTotal int
	Conns                 int
	Retransmissions, RTOs uint64

	Trace []TracePoint
}

// LoadPage loads one site under one (network, protocol) configuration — the
// smallest way to poke at the testbed, and the substrate every experiment
// builds on.
func LoadPage(req PageLoad) (PageResult, error) {
	site, err := resolveSite(req.Site)
	if err != nil {
		return PageResult{}, err
	}
	net, err := resolveNetwork(req.Network)
	if err != nil {
		return PageResult{}, err
	}
	proto, err := resolveProtocol(req.Protocol, net)
	if err != nil {
		return PageResult{}, err
	}

	res := browser.Load(site, browser.Config{Network: net, Proto: proto, Seed: req.Seed, MaxLoadTime: req.MaxLoadTime})
	out := PageResult{
		Site: site.Name, Network: net.Name, Protocol: proto.Name(),
		FVC: res.Report.FVC, SI: res.Report.SI, VC85: res.Report.VC85,
		LVC: res.Report.LVC, PLT: res.Report.PLT, Complete: res.Trace.Completed,
		Objects: res.Objects, ObjectsTotal: len(site.Objects),
		Conns: res.Conns, Retransmissions: res.Retransmissions, RTOs: res.RTOs,
	}
	for _, p := range res.Trace.Points {
		out.Trace = append(out.Trace, TracePoint{T: p.T, VC: p.VC})
	}
	return out, nil
}

// ABStudy describes one A/B "do users notice?" comparison: two protocol
// stacks on one site and network, judged by a streamed synthetic µWorker
// crowd.
type ABStudy struct {
	Site    string
	Network string
	// ProtoA is the supposedly faster stack; shares fold votes back onto it.
	ProtoA, ProtoB string
	// Recordings is the per-stack pool the typical video is selected from
	// (closest-to-mean-PLT rule). Default 5.
	Recordings int
	// Voters is the synthetic crowd size. Default 200 — the interactive
	// panel of the paper; population-scale crowds (hundreds of thousands)
	// stream through the same engine in seconds.
	Voters int
	// VotesPerVoter bounds the stimuli one voter judges. Default 1.
	VotesPerVoter int
	Seed          int64
}

// ABOutcome is a completed A/B comparison.
type ABOutcome struct {
	Site, Network  string
	ProtoA, ProtoB string
	// SIA and SIB are the Speed Indices of the two typical videos.
	SIA, SIB time.Duration
	Votes    int64
	// ShareA, ShareNone, ShareB partition the votes.
	ShareA, ShareNone, ShareB float64
	// Noticed is the Wilson 99% CI on the share of voters who perceived any
	// difference.
	Noticed                     Interval
	MeanConfidence, MeanReplays float64
}

// CompareAB records typical videos for both stacks and runs the A/B study
// over a streamed synthetic crowd. Cancelling ctx aborts the crowd
// simulation with ctx.Err().
func CompareAB(ctx context.Context, req ABStudy) (ABOutcome, error) {
	site, err := resolveSite(req.Site)
	if err != nil {
		return ABOutcome{}, err
	}
	net, err := resolveNetwork(req.Network)
	if err != nil {
		return ABOutcome{}, err
	}
	protoA, err := resolveProtocol(req.ProtoA, net)
	if err != nil {
		return ABOutcome{}, err
	}
	protoB, err := resolveProtocol(req.ProtoB, net)
	if err != nil {
		return ABOutcome{}, err
	}
	reps := req.Recordings
	if reps <= 0 {
		reps = 5
	}
	voters := req.Voters
	if voters <= 0 {
		voters = 200
	}
	votesPer := req.VotesPerVoter
	if votesPer <= 0 {
		votesPer = 1
	}

	if err := ctx.Err(); err != nil {
		return ABOutcome{}, err
	}
	a, err := video.SelectTypical(video.Record(site, net, protoA, reps, req.Seed))
	if err != nil {
		return ABOutcome{}, fmt.Errorf("qoe: recording %s: %w", req.ProtoA, err)
	}
	if err := ctx.Err(); err != nil {
		return ABOutcome{}, err
	}
	b, err := video.SelectTypical(video.Record(site, net, protoB, reps, req.Seed))
	if err != nil {
		return ABOutcome{}, fmt.Errorf("qoe: recording %s: %w", req.ProtoB, err)
	}

	cell := population.ABCell{
		Label:   req.ProtoA + " vs. " + req.ProtoB + " | " + net.Name + " | " + site.Name,
		Left:    a.Report,
		Right:   b.Report,
		AOnLeft: true,
	}
	res, err := population.RunAB(ctx, []population.ABCell{cell}, population.Config{
		Group:               study.Microworker,
		Participants:        voters,
		VotesPerParticipant: votesPer,
		Seed:                req.Seed,
	})
	if err != nil {
		return ABOutcome{}, err
	}
	st := &res.Cells[0]
	noticed := st.Noticed()
	ci, err := noticed.CI(0.99)
	if err != nil {
		return ABOutcome{}, err
	}
	return ABOutcome{
		Site: site.Name, Network: net.Name,
		ProtoA: req.ProtoA, ProtoB: req.ProtoB,
		SIA: a.Report.SI, SIB: b.Report.SI,
		Votes:  st.N(),
		ShareA: st.ShareA(), ShareNone: st.ShareNone(), ShareB: st.ShareB(),
		Noticed:        Interval{Point: ci.Point, Lo: ci.Lo, Hi: ci.Hi, Level: ci.Level},
		MeanConfidence: st.Confidence.Mean(),
		MeanReplays:    st.Replays.Mean(),
	}, nil
}

// Environments lists the rating-study framings by display name.
func Environments() []string {
	var out []string
	for _, env := range study.Environments() {
		out = append(out, env.String())
	}
	return out
}

// environmentByName resolves a framing by its display name ("At Work",
// "Free Time", "On a plane"), case-insensitively.
func environmentByName(name string) (study.Environment, error) {
	for _, env := range study.Environments() {
		if strings.EqualFold(name, env.String()) {
			return env, nil
		}
	}
	return 0, fmt.Errorf("qoe: unknown environment %q (have: %v)", name, Environments())
}

// RatingPanel describes one "do users care?" panel: a crowd rates single
// videos of the same site under several protocol stacks, and a one-way
// ANOVA screens for a protocol effect.
type RatingPanel struct {
	Site    string
	Network string
	// Environment is the framing ("At Work", "Free Time", "On a plane");
	// default "Free Time".
	Environment string
	// Protocols defaults to the five Table 1 stacks.
	Protocols []string
	// Voters per protocol. Default 150 — the paper's per-condition ballpark.
	Voters int
	Seed   int64
}

// ProtocolRating is one stack's aggregated panel rating.
type ProtocolRating struct {
	Protocol string
	// Mean is the Student-t 99% CI over the ACR-100 speed votes.
	Mean Interval
	// Label places the mean on the paper's labeled scale (Bad … Excellent).
	Label string
}

// ANOVA is the one-way analysis of variance over the per-protocol vote
// groups.
type ANOVA struct {
	F        float64
	P        float64
	DFB, DFW int
}

// Significant reports significance at the given confidence level (0.99
// means p < 0.01).
func (a ANOVA) Significant(level float64) bool { return a.P < 1-level }

func (a ANOVA) String() string {
	return fmt.Sprintf("F(%d,%d)=%.3f p=%.4f", a.DFB, a.DFW, a.F, a.P)
}

// RatingOutcome is a completed rating panel.
type RatingOutcome struct {
	Site, Network, Environment string
	Ratings                    []ProtocolRating
	ANOVA                      ANOVA
}

// RatePanel loads the site once per protocol stack, has a synthetic µWorker
// crowd rate each video under the environment framing, and tests the
// protocol effect with a one-way ANOVA. Cancelling ctx stops between
// stacks.
func RatePanel(ctx context.Context, req RatingPanel) (RatingOutcome, error) {
	site, err := resolveSite(req.Site)
	if err != nil {
		return RatingOutcome{}, err
	}
	net, err := resolveNetwork(req.Network)
	if err != nil {
		return RatingOutcome{}, err
	}
	envName := req.Environment
	if envName == "" {
		envName = study.FreeTime.String()
	}
	env, err := environmentByName(envName)
	if err != nil {
		return RatingOutcome{}, err
	}
	protocols := req.Protocols
	if len(protocols) == 0 {
		protocols = ProtocolNames()
	}
	voters := req.Voters
	if voters <= 0 {
		voters = 150
	}

	out := RatingOutcome{Site: site.Name, Network: net.Name, Environment: env.String()}
	var groups [][]float64
	for _, name := range protocols {
		if err := ctx.Err(); err != nil {
			return RatingOutcome{}, err
		}
		proto, err := resolveProtocol(name, net)
		if err != nil {
			return RatingOutcome{}, err
		}
		res := browser.Load(site, browser.Config{Network: net, Proto: proto, Seed: req.Seed})
		// Each protocol's panel draws from its own derived seed, so a
		// stack's rating is reproducible regardless of which other stacks
		// run in the same panel (the same independence the batch runner
		// gives experiments).
		rng := rand.New(rand.NewSource(core.DeriveSeed(req.Seed, "qoe-rating-panel/"+name)))
		votes := make([]float64, 0, voters)
		for i := 0; i < voters; i++ {
			m := participant.New(study.Microworker, rng)
			speed, _ := m.Rate(res.Report, env)
			votes = append(votes, speed)
		}
		ci, err := stats.MeanCI(votes, 0.99)
		if err != nil {
			return RatingOutcome{}, err
		}
		groups = append(groups, votes)
		out.Ratings = append(out.Ratings, ProtocolRating{
			Protocol: name,
			Mean:     Interval{Point: ci.Point, Lo: ci.Lo, Hi: ci.Hi, Level: ci.Level},
			Label:    study.ScaleLabel(ci.Point),
		})
	}
	an, err := stats.OneWayANOVA(groups...)
	if err != nil {
		return RatingOutcome{}, err
	}
	out.ANOVA = ANOVA{F: an.F, P: an.P, DFB: an.DFB, DFW: an.DFW}
	return out, nil
}

// SweepRequest describes a noticeability-crossover sweep: one network
// dimension varied around a base operating point, the A-vs-B gap measured
// at each step, and a perception panel voting on it.
type SweepRequest struct {
	// Dimension is one of "speed", "bandwidth", "rtt", "loss".
	Dimension string
	// Base is the network whose operating point anchors the sweep.
	Base           string
	ProtoA, ProtoB string
	// Values are the sweep steps in the dimension's unit (a scale factor
	// for speed, Mbps for bandwidth, milliseconds for rtt, a fraction for
	// loss).
	Values []float64
	// Reps per site and step. Default 3.
	Reps int
	// PanelSize voters per step. Default 200.
	PanelSize int
	Seed      int64
}

// SweepPoint is one sweep step.
type SweepPoint struct {
	Value        float64
	SIA, SIB     time.Duration
	GapRatio     float64
	NoticedShare float64
}

// SweepOutcome is a completed sweep.
type SweepOutcome struct {
	Dimension, Base string
	ProtoA, ProtoB  string
	Points          []SweepPoint
}

// Crossover returns the first swept value at which the notice share drops
// below the threshold, and whether one exists.
func (r SweepOutcome) Crossover(threshold float64) (float64, bool) {
	for _, p := range r.Points {
		if p.NoticedShare < threshold {
			return p.Value, true
		}
	}
	return 0, false
}

// Render prints the sweep as the classic netsweep table.
func (r SweepOutcome) Render(w io.Writer) {
	fmt.Fprintf(w, "Sweep %s over %s: %s vs %s\n", r.Dimension, r.Base, r.ProtoA, r.ProtoB)
	fmt.Fprintf(w, "%12s %12s %12s %8s %9s\n", "value", "SI(A)", "SI(B)", "B/A", "noticed")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%12g %12s %12s %8.2f %8.0f%%\n",
			p.Value, p.SIA.Round(time.Millisecond), p.SIB.Round(time.Millisecond),
			p.GapRatio, p.NoticedShare*100)
	}
}

// parseDimension maps the public dimension names onto the sweep package's.
func parseDimension(name string) (sweep.Dimension, error) {
	switch name {
	case "speed":
		return sweep.Speed, nil
	case "bandwidth":
		return sweep.Bandwidth, nil
	case "rtt":
		return sweep.RTT, nil
	case "loss":
		return sweep.Loss, nil
	}
	return 0, fmt.Errorf("qoe: unknown dimension %q (have: speed, bandwidth, rtt, loss)", name)
}

// Sweep runs the parameter sweep over the lab corpus. Cancelling ctx stops
// between sweep steps.
func Sweep(ctx context.Context, req SweepRequest) (SweepOutcome, error) {
	dim, err := parseDimension(req.Dimension)
	if err != nil {
		return SweepOutcome{}, err
	}
	base, err := resolveNetwork(req.Base)
	if err != nil {
		return SweepOutcome{}, err
	}
	res, err := sweep.Run(ctx, sweep.Config{
		Dim:       dim,
		Base:      base,
		Values:    req.Values,
		ProtoA:    req.ProtoA,
		ProtoB:    req.ProtoB,
		Sites:     webpage.LabCorpus(),
		Reps:      req.Reps,
		PanelSize: req.PanelSize,
		Seed:      req.Seed,
	})
	if err != nil {
		return SweepOutcome{}, err
	}
	out := SweepOutcome{Dimension: dim.String(), Base: base.Name, ProtoA: req.ProtoA, ProtoB: req.ProtoB}
	for _, p := range res.Points {
		out.Points = append(out.Points, SweepPoint{
			Value: p.Value, SIA: p.SIA, SIB: p.SIB,
			GapRatio: p.GapRatio, NoticedShare: p.PNoticeShare,
		})
	}
	return out, nil
}
