package qoe

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// ErrTruncatedStream reports an NDJSON event stream that ended before its
// summary line. Every complete schema_version 1 stream closes with exactly
// one summary event, so its absence means the producing run was cancelled or
// failed server-side, or the transfer was cut off.
var ErrTruncatedStream = errors.New("qoe: event stream ended without a summary")

// TextSink renders every experiment's classic text table to w, framed by the
// qoebench timing line — byte-identical to the pre-SDK `qoebench` text
// output. Row and progress events are ignored; the first failed experiment
// aborts the run with its error.
func TextSink(w io.Writer) Sink { return &textSink{w: w} }

type textSink struct{ w io.Writer }

func (s *textSink) Row(RowEvent) error           { return nil }
func (s *textSink) Progress(ProgressEvent) error { return nil }
func (s *textSink) Summary(SummaryEvent) error   { return nil }
func (s *textSink) discardsRows()                {}

func (s *textSink) Result(ev ResultEvent) error {
	if ev.Err != nil {
		return fmt.Errorf("%s: %w", ev.Experiment, ev.Err)
	}
	ev.Doc.Render(s.w)
	_, err := fmt.Fprintf(s.w, "\n[%s done in %v]\n\n", ev.Experiment, ev.Duration.Round(time.Millisecond))
	return err
}

// CSVSink writes every experiment's CSV document to w, unframed — one
// document per experiment, byte-identical to `qoebench -format csv`.
func CSVSink(w io.Writer) Sink { return &docSink{w: w, encode: Document.CSV} }

// JSONSink writes every experiment's indented-JSON document to w, unframed —
// byte-identical to `qoebench -format json`. For the streaming row-event
// encoding use StreamSink instead.
func JSONSink(w io.Writer) Sink { return &docSink{w: w, encode: Document.JSON} }

// docSink renders whole documents through one of the Document encoders.
type docSink struct {
	w      io.Writer
	encode func(Document, io.Writer) error
}

func (s *docSink) Row(RowEvent) error           { return nil }
func (s *docSink) Progress(ProgressEvent) error { return nil }
func (s *docSink) Summary(SummaryEvent) error   { return nil }
func (s *docSink) discardsRows()                {}

func (s *docSink) Result(ev ResultEvent) error {
	if ev.Err != nil {
		return fmt.Errorf("%s: %w", ev.Experiment, ev.Err)
	}
	return s.encode(ev.Doc, s.w)
}

// StreamSink emits the versioned NDJSON event stream: one JSON object per
// line, each carrying `"schema_version": 1` and a `"type"` of "row",
// "progress", "decision", or "summary". Row, decision, and summary lines
// are deterministic for a fixed session configuration; progress lines
// interleave in completion order and carry no wall-clock values, so the
// whole stream is reproducible for sequential (or single-experiment) runs.
//
// Lines are append-encoded into a buffer reused across events (no
// encoding/json reflection on the hot path — the steady-state row path does
// not allocate) and handed to w as exactly one Write per event, so a
// broadcast writer like qoed's job buffer sees whole NDJSON lines. The
// bytes are identical to what the wire format's original
// encoding/json-based encoder produced, golden- and differential-tested.
func StreamSink(w io.Writer) Sink { return &streamSink{w: w} }

type streamSink struct {
	w   io.Writer
	buf []byte // reused line scratch for the append encoders
}

func (s *streamSink) emit(line []byte) error {
	s.buf = line[:0] // keep the grown capacity for the next event
	_, err := s.w.Write(line)
	return err
}

func (s *streamSink) Row(ev RowEvent) error {
	return s.emit(appendRowEvent(s.buf, ev))
}

func (s *streamSink) Progress(ev ProgressEvent) error {
	return s.emit(appendProgressEvent(s.buf, ev))
}

func (s *streamSink) Summary(ev SummaryEvent) error {
	return s.emit(appendSummaryEvent(s.buf, ev))
}

func (s *streamSink) Decision(ev DecisionEvent) error {
	return s.emit(appendDecisionEvent(s.buf, ev))
}

// streamWire is the union of the NDJSON line shapes, for decoding:
// schema_version and type discriminate, the rest is per-type payload.
type streamWire struct {
	Schema       int             `json:"schema_version"`
	Type         string          `json:"type"`
	Experiment   string          `json:"experiment"`
	Index        int             `json:"index"`
	Data         json.RawMessage `json:"data"`
	Stage        string          `json:"stage"`
	Completed    int             `json:"completed"`
	Total        int             `json:"total"`
	Experiments  int             `json:"experiments"`
	Rows         int             `json:"rows"`
	Conditions   int             `json:"conditions"`
	CacheRecords uint64          `json:"cache_records"`
	CacheHits    uint64          `json:"cache_hits"`
	// "decision" payload (adaptive experiments).
	Cell    string  `json:"cell"`
	Outcome string  `json:"outcome"`
	Round   int     `json:"round"`
	Looks   int     `json:"looks"`
	Votes   int64   `json:"votes"`
	Budget  int64   `json:"budget"`
	Point   float64 `json:"point"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Level   float64 `json:"level"`
}

// DecodeStream is the inverse of StreamSink: it reads a schema_version 1
// NDJSON event stream from r and replays it into sink as typed events, so a
// remote consumer (the qoed HTTP client) drives the same Sink implementations
// a local Session.Run would. It returns the stream's SummaryEvent.
//
// Decoding is strict: an unknown schema_version or event type, or malformed
// JSON, fails immediately with a decode error. A stream that ENDS cleanly
// without a summary line (io.EOF / io.ErrUnexpectedEOF) — the wire signature
// of a run that was cancelled or failed server-side, or of a cut-off
// transfer — returns ErrTruncatedStream instead; other mid-read failures
// (wire corruption, transport errors) are reported as what they are, never
// conflated with truncation. A sink error stops the replay and is returned
// as-is, mirroring Session.Run's sink-error contract.
func DecodeStream(r io.Reader, sink Sink) (SummaryEvent, error) {
	dec := json.NewDecoder(r)
	decisionSink, _ := sink.(DecisionSink)
	for {
		var w streamWire
		if err := dec.Decode(&w); err != nil {
			if errors.Is(err, io.EOF) {
				return SummaryEvent{}, ErrTruncatedStream
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return SummaryEvent{}, fmt.Errorf("%w: %v", ErrTruncatedStream, err)
			}
			return SummaryEvent{}, fmt.Errorf("qoe: decoding event stream: %w", err)
		}
		if w.Schema != SchemaVersion {
			return SummaryEvent{}, fmt.Errorf("qoe: unsupported schema_version %d (want %d)", w.Schema, SchemaVersion)
		}
		switch w.Type {
		case "row":
			if err := sink.Row(RowEvent{Experiment: w.Experiment, Index: w.Index, Data: w.Data}); err != nil {
				return SummaryEvent{}, err
			}
		case "progress":
			if err := sink.Progress(ProgressEvent{Stage: Stage(w.Stage), Experiment: w.Experiment, Completed: w.Completed, Total: w.Total}); err != nil {
				return SummaryEvent{}, err
			}
		case "decision":
			// Decisions are an optional extension: replayed only into sinks
			// that implement DecisionSink, silently skipped otherwise —
			// mirroring Session.Run, where non-implementing sinks never see
			// them either. Truly unknown types below stay a hard error.
			if decisionSink == nil {
				continue
			}
			ev := DecisionEvent{
				Experiment: w.Experiment, Cell: w.Cell, Index: w.Index,
				Outcome: w.Outcome, Round: w.Round, Looks: w.Looks,
				Votes: w.Votes, Budget: w.Budget,
				Point: w.Point, Lo: w.Lo, Hi: w.Hi, Level: w.Level,
			}
			if err := decisionSink.Decision(ev); err != nil {
				return SummaryEvent{}, err
			}
		case "summary":
			ev := SummaryEvent{
				Experiments: w.Experiments, Rows: w.Rows, Conditions: w.Conditions,
				CacheRecords: w.CacheRecords, CacheHits: w.CacheHits,
			}
			if err := sink.Summary(ev); err != nil {
				return SummaryEvent{}, err
			}
			return ev, nil
		default:
			return SummaryEvent{}, fmt.Errorf("qoe: unknown stream event type %q", w.Type)
		}
	}
}
