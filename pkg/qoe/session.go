package qoe

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/runner"
)

// Scale selects how much recording effort a session invests per condition.
type Scale string

// The three testbed scales.
const (
	// ScaleQuick covers the five lab sites with five repetitions — the
	// smallest setting that exercises every experiment end to end.
	ScaleQuick Scale = "quick"
	// ScaleStandard covers the full 36-site corpus with seven repetitions.
	ScaleStandard Scale = "standard"
	// ScalePaper matches the paper's recording effort: 36 sites, 31 reps.
	ScalePaper Scale = "paper"
)

// ScaleNames lists the scale names ParseScale accepts, smallest first.
func ScaleNames() []string {
	return []string{string(ScaleQuick), string(ScaleStandard), string(ScalePaper)}
}

// ParseScale resolves a scale name.
func ParseScale(name string) (Scale, error) {
	switch Scale(name) {
	case ScaleQuick, ScaleStandard, ScalePaper:
		return Scale(name), nil
	}
	return "", fmt.Errorf("qoe: unknown scale %q (have: quick, standard, paper)", name)
}

func (s Scale) testbedScale() (core.Scale, error) {
	switch s {
	case ScaleQuick, "":
		return core.QuickScale(), nil
	case ScaleStandard:
		return core.StandardScale(), nil
	case ScalePaper:
		return core.PaperScale(), nil
	}
	return core.Scale{}, fmt.Errorf("qoe: unknown scale %q (have: quick, standard, paper)", s)
}

// Session owns one configured run of the experiment suite: the selected
// experiments, the testbed scale, the master seed, and the parallelism
// bound. A Session is immutable once built and may be Run any number of
// times; each Run constructs a fresh shared testbed, so runs never leak
// state into each other.
type Session struct {
	scenarios  []string
	exps       []experiments.Experiment
	scale      core.Scale
	scaleName  Scale
	seed       int64
	parallel   int
	population experiments.PopulationBackend
	adaptive   *experiments.AdaptiveOptions
}

// Option configures a Session under construction.
type Option func(*Session) error

// WithSeed sets the master seed (default 1). Every experiment, condition
// recording, and population shard derives its own seed from it, so one seed
// pins an entire run.
func WithSeed(seed int64) Option {
	return func(s *Session) error {
		s.seed = seed
		return nil
	}
}

// WithScale sets the testbed scale (default ScaleQuick).
func WithScale(scale Scale) Option {
	return func(s *Session) error {
		if _, err := scale.testbedScale(); err != nil {
			return err
		}
		s.scaleName = scale
		return nil
	}
}

// WithParallelism bounds how many experiments run concurrently. Zero (the
// default) resolves to core.DefaultParallelism — GOMAXPROCS — at session
// construction; this option is the one place the default is applied, and
// the resolved value is passed down explicitly. One runs sequentially,
// which also makes the progress-event order deterministic.
func WithParallelism(n int) Option {
	return func(s *Session) error {
		if n < 0 {
			return fmt.Errorf("qoe: negative parallelism %d", n)
		}
		s.parallel = n
		return nil
	}
}

// PopulationBackend is an alternative engine for the canonical pop-ab /
// pop-rating population runs (see qoed.NewFabric for the distributed one).
type PopulationBackend = experiments.PopulationBackend

// WithPopulationBackend routes the canonical pop-ab / pop-rating engine
// calls through backend — typically a distributed study fabric coordinator
// that shards them across qoed workers — instead of running them in process.
// Everything around the engine call is unchanged, so the session's event
// stream stays byte-identical to an in-process run; nil (the default) keeps
// the engine local.
func WithPopulationBackend(backend PopulationBackend) Option {
	return func(s *Session) error {
		s.population = backend
		return nil
	}
}

// AdaptiveConfig tunes the sequential-stopping policy of adaptive
// experiments (pop-sweep-adaptive): the always-valid error budget Alpha,
// the noticeability Threshold, and the allocator's MinShards bootstrap and
// RoundShards per-round budget. Zero fields keep the canonical defaults;
// Workers bounds the engine's shard parallelism and never changes result
// bytes.
type AdaptiveConfig = experiments.AdaptiveOptions

// WithAdaptive overrides the canonical sequential-stopping policy of
// adaptive experiments. The policy shapes the result bytes (which cells
// stop when), so sessions that must stay byte-comparable to golden, cached,
// or fabric runs leave it unset — the canonical policy is the default.
func WithAdaptive(cfg AdaptiveConfig) Option {
	return func(s *Session) error {
		if cfg.Alpha < 0 || cfg.Alpha >= 1 {
			return fmt.Errorf("qoe: adaptive alpha %g outside [0, 1)", cfg.Alpha)
		}
		if cfg.Threshold < 0 || cfg.Threshold >= 1 {
			return fmt.Errorf("qoe: adaptive threshold %g outside [0, 1)", cfg.Threshold)
		}
		if cfg.MinShards < 0 || cfg.RoundShards < 0 || cfg.Workers < 0 {
			return fmt.Errorf("qoe: negative adaptive shard/worker counts")
		}
		c := cfg
		s.adaptive = &c
		return nil
	}
}

// WithScenarios selects the experiments the session runs, by registry name
// and in the given order; the pseudo-name "all" expands to the full
// canonical suite (and is the default). Unknown names fail NewSession with
// a did-you-mean suggestion.
func WithScenarios(names ...string) Option {
	return func(s *Session) error {
		s.scenarios = append([]string(nil), names...)
		return nil
	}
}

// NewSession builds a Session from the options, resolving experiment names
// against the registry and defaults (scale quick, seed 1, parallelism
// core.DefaultParallelism) eagerly so misconfiguration fails here, not
// mid-run.
func NewSession(opts ...Option) (*Session, error) {
	s := &Session{scaleName: ScaleQuick, seed: 1}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	var err error
	if s.scale, err = s.scaleName.testbedScale(); err != nil {
		return nil, err
	}
	if s.parallel == 0 {
		s.parallel = core.DefaultParallelism()
	}
	if len(s.scenarios) == 0 {
		s.scenarios = []string{"all"}
	}
	if s.exps, err = experiments.Select(s.scenarios...); err != nil {
		return nil, fmt.Errorf("qoe: %w", err)
	}
	return s, nil
}

// Experiments lists the resolved experiment names the session will run, in
// run order.
func (s *Session) Experiments() []string {
	out := make([]string, len(s.exps))
	for i, e := range s.exps {
		out[i] = e.Name()
	}
	return out
}

// Parallelism returns the resolved concurrency bound.
func (s *Session) Parallelism() int { return s.parallel }

// Summary is the outcome of one Session.Run: the deterministic wire-level
// accounting (SummaryEvent) plus the wall-clock timings, which stay off the
// event stream so streamed output is reproducible.
type Summary struct {
	SummaryEvent
	Prewarm time.Duration
	Total   time.Duration
}

// String renders the classic one-line batch accounting (the line qoebench
// prints to stderr).
func (s Summary) String() string {
	return fmt.Sprintf("[%d experiments in %v; prewarm %v over %d conditions; cache: %d recorded, %d hits]",
		s.Experiments, s.Total.Round(time.Millisecond), s.Prewarm.Round(time.Millisecond),
		s.Conditions, s.CacheRecords, s.CacheHits)
}

// Run executes the session's experiments against one fresh shared testbed
// and streams the outcome to sink (nil runs silently). Events arrive on a
// single goroutine: progress as stages advance, then — strictly in
// selection order — each experiment's ResultEvent (for ResultSink
// implementors), its DecisionEvents in grid order (adaptive experiments,
// DecisionSink implementors), and its RowEvents, and finally one
// SummaryEvent.
//
// Run returns the first of: a sink error (which also cancels the rest of
// the run), ctx's error if it was cancelled, or the first per-experiment
// error. A cancelled run stops the prewarm between conditions, marks
// unstarted experiments with ctx.Err(), and winds population shard loops
// down promptly; since the testbed is private to the run, no shared state
// survives in a corrupted form.
func (s *Session) Run(ctx context.Context, sink Sink) (Summary, error) {
	if sink == nil {
		sink = discardSink{}
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var sinkErr error
	// emit delivers one event, latching the first sink error (which also
	// cancels the rest of the run) and reporting delivery success.
	emit := func(f func() error) bool {
		if sinkErr != nil {
			return false
		}
		if err := f(); err != nil {
			sinkErr = err
			cancel()
			return false
		}
		return true
	}
	resultSink, _ := sink.(ResultSink)
	decisionSink, _ := sink.(DecisionSink)
	_, skipRows := sink.(rowless)
	rows := 0

	rep := runner.RunContext(runCtx, s.exps, runner.Options{
		Scale:      s.scale,
		Seed:       s.seed,
		Parallel:   s.parallel,
		Format:     runner.None,
		Population: s.population,
		Adaptive:   s.adaptive,
	}, runner.Hooks{
		Progress: func(p runner.Progress) {
			emit(func() error {
				return sink.Progress(ProgressEvent{Stage: Stage(p.Stage), Experiment: p.Experiment, Completed: p.Completed, Total: p.Total})
			})
		},
		Result: func(i int, r runner.ExperimentReport, res experiments.Result) {
			if resultSink != nil {
				emit(func() error {
					return resultSink.Result(ResultEvent{Experiment: r.Name, Seed: r.Seed, Duration: r.Duration, Err: r.Err, Doc: res})
				})
			}
			if r.Err != nil || res == nil || sinkErr != nil {
				return
			}
			if decisionSink != nil {
				if dd, ok := res.(interface {
					Decisions() []experiments.Decision
				}); ok {
					for _, d := range dd.Decisions() {
						d := d
						if !emit(func() error {
							return decisionSink.Decision(DecisionEvent{
								Experiment: d.Experiment, Cell: d.Cell, Index: d.Index,
								Outcome: d.Outcome, Round: d.Round, Looks: d.Looks,
								Votes: d.Votes, Budget: d.Budget,
								Point: d.Point, Lo: d.Lo, Hi: d.Hi, Level: d.Level,
							})
						}) {
							return
						}
					}
				}
			}
			if skipRows {
				return
			}
			evs, err := rowEvents(r.Name, res)
			if err != nil {
				emit(func() error { return err })
				return
			}
			for _, ev := range evs {
				ev := ev
				if !emit(func() error { return sink.Row(ev) }) {
					return
				}
				rows++
			}
		},
	})

	summary := Summary{
		SummaryEvent: SummaryEvent{
			Experiments:  len(rep.Results),
			Rows:         rows,
			Conditions:   rep.Conditions,
			CacheRecords: rep.Cache.Records,
			CacheHits:    rep.Cache.Hits,
		},
		Prewarm: rep.Prewarm,
		Total:   rep.Total,
	}
	emit(func() error { return sink.Summary(summary.SummaryEvent) })

	switch {
	case sinkErr != nil:
		return summary, sinkErr
	case ctx.Err() != nil:
		return summary, ctx.Err()
	default:
		return summary, rep.Err()
	}
}
