package qoe

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// This file is the append-based wire encoder behind StreamSink: hand-rolled
// encoders for the three schema_version 1 NDJSON line shapes, writing into a
// caller-reused buffer instead of through encoding/json's reflection path.
// The output is byte-identical to what a default json.Encoder produced for
// the equivalent wire structs — including HTML escaping (<, >, & and
// U+2028/U+2029 become \u-escapes, encoding/json's default) and RawMessage
// compaction — which is pinned by the stream golden and by differential
// tests against encoding/json on fuzzed events.

const hexDigits = "0123456789abcdef"

// appendRowEvent appends the "row" NDJSON line (newline included) for ev.
func appendRowEvent(dst []byte, ev RowEvent) []byte {
	dst = appendLineStart(dst, "row")
	dst = append(dst, `,"experiment":`...)
	dst = appendJSONString(dst, ev.Experiment)
	dst = append(dst, `,"index":`...)
	dst = strconv.AppendInt(dst, int64(ev.Index), 10)
	dst = append(dst, `,"data":`...)
	dst = appendCompactRaw(dst, ev.Data)
	return append(dst, '}', '\n')
}

// appendProgressEvent appends the "progress" NDJSON line for ev. An empty
// Experiment is omitted, matching the wire struct's omitempty.
func appendProgressEvent(dst []byte, ev ProgressEvent) []byte {
	dst = appendLineStart(dst, "progress")
	dst = append(dst, `,"stage":`...)
	dst = appendJSONString(dst, string(ev.Stage))
	if ev.Experiment != "" {
		dst = append(dst, `,"experiment":`...)
		dst = appendJSONString(dst, ev.Experiment)
	}
	dst = append(dst, `,"completed":`...)
	dst = strconv.AppendInt(dst, int64(ev.Completed), 10)
	dst = append(dst, `,"total":`...)
	dst = strconv.AppendInt(dst, int64(ev.Total), 10)
	return append(dst, '}', '\n')
}

// appendDecisionEvent appends the "decision" NDJSON line for ev.
func appendDecisionEvent(dst []byte, ev DecisionEvent) []byte {
	dst = appendLineStart(dst, "decision")
	dst = append(dst, `,"experiment":`...)
	dst = appendJSONString(dst, ev.Experiment)
	dst = append(dst, `,"cell":`...)
	dst = appendJSONString(dst, ev.Cell)
	dst = append(dst, `,"index":`...)
	dst = strconv.AppendInt(dst, int64(ev.Index), 10)
	dst = append(dst, `,"outcome":`...)
	dst = appendJSONString(dst, ev.Outcome)
	dst = append(dst, `,"round":`...)
	dst = strconv.AppendInt(dst, int64(ev.Round), 10)
	dst = append(dst, `,"looks":`...)
	dst = strconv.AppendInt(dst, int64(ev.Looks), 10)
	dst = append(dst, `,"votes":`...)
	dst = strconv.AppendInt(dst, ev.Votes, 10)
	dst = append(dst, `,"budget":`...)
	dst = strconv.AppendInt(dst, ev.Budget, 10)
	dst = append(dst, `,"point":`...)
	dst = appendJSONFloat(dst, ev.Point)
	dst = append(dst, `,"lo":`...)
	dst = appendJSONFloat(dst, ev.Lo)
	dst = append(dst, `,"hi":`...)
	dst = appendJSONFloat(dst, ev.Hi)
	dst = append(dst, `,"level":`...)
	dst = appendJSONFloat(dst, ev.Level)
	return append(dst, '}', '\n')
}

// appendJSONFloat appends f exactly as encoding/json encodes a float64:
// shortest round-trip representation, 'f' form for magnitudes in
// [1e-6, 1e21), otherwise 'e' form with any two-digit negative exponent's
// leading zero stripped (1e-7 → "1e-07" → "1e-7"). Non-finite values —
// which encoding/json rejects with an error — encode as null; decision
// fields are probabilities and levels, so a NaN here would mean an engine
// bug, and null is the honest wire value for it.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendSummaryEvent appends the "summary" NDJSON line for ev.
func appendSummaryEvent(dst []byte, ev SummaryEvent) []byte {
	dst = appendLineStart(dst, "summary")
	dst = append(dst, `,"experiments":`...)
	dst = strconv.AppendInt(dst, int64(ev.Experiments), 10)
	dst = append(dst, `,"rows":`...)
	dst = strconv.AppendInt(dst, int64(ev.Rows), 10)
	dst = append(dst, `,"conditions":`...)
	dst = strconv.AppendInt(dst, int64(ev.Conditions), 10)
	dst = append(dst, `,"cache_records":`...)
	dst = strconv.AppendUint(dst, ev.CacheRecords, 10)
	dst = append(dst, `,"cache_hits":`...)
	dst = strconv.AppendUint(dst, ev.CacheHits, 10)
	return append(dst, '}', '\n')
}

// appendLineStart opens an event object with the schema/type envelope every
// line carries.
func appendLineStart(dst []byte, typ string) []byte {
	dst = append(dst, `{"schema_version":`...)
	dst = strconv.AppendInt(dst, SchemaVersion, 10)
	dst = append(dst, `,"type":"`...)
	dst = append(dst, typ...)
	return append(dst, '"')
}

// jsonSafe reports whether an ASCII byte passes through a JSON string
// unescaped under encoding/json's default (HTML-escaping) encoder.
func jsonSafe(b byte) bool {
	return b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}

// appendJSONString appends s as a JSON string literal, byte-identical to
// encoding/json's default string encoding: control characters, quote and
// backslash escaped; <, >, & HTML-escaped; U+2028/U+2029 \u-escaped; invalid
// UTF-8 bytes emitted as � escapes.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Other control characters, plus <, >, & under HTML escaping.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendCompactRaw appends a raw JSON value with insignificant whitespace
// removed and HTML characters escaped — byte-identical to what
// encoding/json's Marshal emits for a json.RawMessage. raw must be valid
// JSON (every producer in this package — rowEvents' json.Compact output and
// DecodeStream's decoder — guarantees it); malformed input is copied through
// best-effort rather than diagnosed. A nil or empty value encodes as null,
// matching the nil-RawMessage behaviour.
func appendCompactRaw(dst []byte, raw []byte) []byte {
	if len(raw) == 0 {
		return append(dst, "null"...)
	}
	inStr := false
	escaped := false
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if inStr {
			switch {
			case escaped:
				escaped = false
				dst = append(dst, c)
			case c == '\\':
				escaped = true
				dst = append(dst, c)
			case c == '"':
				inStr = false
				dst = append(dst, c)
			case c == '<' || c == '>' || c == '&':
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			case c == 0xE2 && i+2 < len(raw) && raw[i+1] == 0x80 && raw[i+2]&^1 == 0xA8:
				dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[raw[i+2]&0xF])
				i += 2
			default:
				dst = append(dst, c)
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			// Insignificant inter-token whitespace: dropped.
		case '"':
			inStr = true
			dst = append(dst, c)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}
