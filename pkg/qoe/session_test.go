package qoe

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// sessionScenarios is a small but representative selection: two static
// tables plus one experiment that really simulates (the 0-RTT extension
// drives the page loader).
var sessionScenarios = []string{"table1", "table2", "ext-0rtt"}

// legacyOutputs renders the same selection through the deprecated batch
// runner in the given format.
func legacyOutputs(t *testing.T, format runner.Format, seed int64) []byte {
	t.Helper()
	exps, err := experiments.Select(sessionScenarios...)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ScaleQuick.testbedScale()
	if err != nil {
		t.Fatal(err)
	}
	rep := runner.Run(exps, runner.Options{Scale: sc, Seed: seed, Format: format})
	var buf bytes.Buffer
	if err := rep.WriteOutputs(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestSession(t *testing.T, seed int64, parallel int) *Session {
	t.Helper()
	sess, err := NewSession(
		WithScenarios(sessionScenarios...),
		WithSeed(seed),
		WithScale(ScaleQuick),
		WithParallelism(parallel),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestAdapterSinksMatchLegacyRunner: the adapter sinks must reproduce the
// pre-SDK text (framed), CSV, and JSON batch outputs byte-for-byte — the
// contract that keeps cmd/qoebench's output and the goldens stable across
// the redesign.
func TestAdapterSinksMatchLegacyRunner(t *testing.T) {
	const seed = 21
	for _, tc := range []struct {
		format runner.Format
		sink   func(*bytes.Buffer) Sink
	}{
		{runner.Text, func(b *bytes.Buffer) Sink { return TextSink(b) }},
		{runner.CSV, func(b *bytes.Buffer) Sink { return CSVSink(b) }},
		{runner.JSON, func(b *bytes.Buffer) Sink { return JSONSink(b) }},
	} {
		want := legacyOutputs(t, tc.format, seed)
		var got bytes.Buffer
		sess := newTestSession(t, seed, 4)
		if _, err := sess.Run(context.Background(), tc.sink(&got)); err != nil {
			t.Fatalf("%s: %v", tc.format, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("%s: adapter sink output differs from legacy runner output\n got %d bytes\nwant %d bytes", tc.format, got.Len(), len(want))
		}
	}
}

// collectSink records every event for structural assertions and can cancel
// the run after the first result.
type collectSink struct {
	rows      []RowEvent
	progress  []ProgressEvent
	results   []ResultEvent
	summaries []SummaryEvent
	onResult  func()
}

func (s *collectSink) Row(ev RowEvent) error { s.rows = append(s.rows, ev); return nil }
func (s *collectSink) Progress(ev ProgressEvent) error {
	s.progress = append(s.progress, ev)
	return nil
}
func (s *collectSink) Summary(ev SummaryEvent) error {
	s.summaries = append(s.summaries, ev)
	return nil
}
func (s *collectSink) Result(ev ResultEvent) error {
	s.results = append(s.results, ev)
	if s.onResult != nil {
		s.onResult()
	}
	return nil
}

// TestSessionStreamsTypedEvents: a run delivers results in selection order,
// rows for every experiment, progress covering every experiment, and exactly
// one summary whose counters are consistent.
func TestSessionStreamsTypedEvents(t *testing.T) {
	sess := newTestSession(t, 3, 2)
	sink := &collectSink{}
	summary, err := sess.Run(context.Background(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.results) != len(sessionScenarios) {
		t.Fatalf("results = %d, want %d", len(sink.results), len(sessionScenarios))
	}
	for i, name := range sessionScenarios {
		if sink.results[i].Experiment != name {
			t.Fatalf("result order %v, want %v", sink.results, sessionScenarios)
		}
	}
	if len(sink.rows) == 0 || len(sink.rows) != summary.Rows {
		t.Fatalf("rows delivered %d, summary says %d", len(sink.rows), summary.Rows)
	}
	perExp := map[string]int{}
	for _, r := range sink.rows {
		if r.Index != perExp[r.Experiment] {
			t.Fatalf("row indices of %s not contiguous", r.Experiment)
		}
		perExp[r.Experiment]++
		if len(r.Data) == 0 || (r.Data[0] != '{' && r.Data[0] != '[') {
			t.Fatalf("row data not compact JSON: %q", r.Data)
		}
	}
	for _, name := range sessionScenarios {
		if perExp[name] == 0 {
			t.Fatalf("no rows for %s", name)
		}
	}
	expProgress := 0
	for _, p := range sink.progress {
		if p.Stage == StageExperiment && p.Experiment != "" {
			expProgress++
		}
	}
	if expProgress != len(sessionScenarios) {
		t.Fatalf("experiment progress events = %d, want %d", expProgress, len(sessionScenarios))
	}
	if len(sink.summaries) != 1 || sink.summaries[0] != summary.SummaryEvent {
		t.Fatalf("summary events %v inconsistent with returned summary %v", sink.summaries, summary.SummaryEvent)
	}
	if summary.Experiments != len(sessionScenarios) {
		t.Fatalf("summary experiments = %d", summary.Experiments)
	}
}

// seqDecisionSink records the interleaving of result/decision/row events as
// a flat tag sequence, to pin the delivery order contract.
type seqDecisionSink struct {
	collectSink
	decisions []DecisionEvent
	order     []string
}

func (s *seqDecisionSink) Row(ev RowEvent) error {
	s.order = append(s.order, "row:"+ev.Experiment)
	return s.collectSink.Row(ev)
}

func (s *seqDecisionSink) Result(ev ResultEvent) error {
	s.order = append(s.order, "result:"+ev.Experiment)
	return s.collectSink.Result(ev)
}

func (s *seqDecisionSink) Decision(ev DecisionEvent) error {
	s.order = append(s.order, "decision:"+ev.Experiment)
	s.decisions = append(s.decisions, ev)
	return nil
}

// TestSessionEmitsDecisions: an adaptive experiment delivers one
// DecisionEvent per grid cell to DecisionSink implementors — in grid order,
// after the experiment's ResultEvent and before its rows — and the vote
// accounting shows real savings. Non-adaptive experiments emit none.
func TestSessionEmitsDecisions(t *testing.T) {
	if testing.Short() {
		t.Skip("population-scale run")
	}
	sess, err := NewSession(WithScenarios("table1", "pop-sweep-adaptive"), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	sink := &seqDecisionSink{}
	if _, err := sess.Run(context.Background(), sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.decisions) == 0 {
		t.Fatal("adaptive run delivered no decisions")
	}
	var saved int64
	for i, d := range sink.decisions {
		if d.Experiment != "pop-sweep-adaptive" || d.Index != i {
			t.Fatalf("decision %d addressing: %+v", i, d)
		}
		if d.Cell == "" || d.Outcome == "" || d.Votes <= 0 || d.Budget < d.Votes {
			t.Fatalf("decision %d malformed: %+v", i, d)
		}
		saved += d.Budget - d.Votes
	}
	if saved <= 0 {
		t.Fatal("adaptive decisions report no vote savings")
	}
	// Order: the adaptive experiment's decisions sit between its result and
	// its first row; table1 emits no decisions.
	var resultAt, firstDecision, lastDecision, firstRow int
	resultAt, firstDecision, firstRow = -1, -1, -1
	for i, tag := range sink.order {
		switch tag {
		case "decision:table1":
			t.Fatal("non-adaptive experiment emitted a decision")
		case "result:pop-sweep-adaptive":
			resultAt = i
		case "decision:pop-sweep-adaptive":
			if firstDecision == -1 {
				firstDecision = i
			}
			lastDecision = i
		case "row:pop-sweep-adaptive":
			if firstRow == -1 {
				firstRow = i
			}
		}
	}
	if resultAt == -1 || firstDecision < resultAt || firstRow < lastDecision {
		t.Fatalf("delivery order violated: %v", sink.order)
	}
}

// TestSessionRunCanceledMidBatch: cancelling the context from inside the
// sink (after the first result) aborts the rest of the batch with ctx.Err(),
// and a fresh session afterwards runs to completion — no shared state is
// corrupted by the aborted run.
func TestSessionRunCanceledMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &collectSink{onResult: cancel}
	sess := newTestSession(t, 5, 1)
	_, err := sess.Run(ctx, sink)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if len(sink.results) == 0 {
		t.Fatal("expected at least the first result before cancellation")
	}
	var sawCanceled bool
	for _, r := range sink.results {
		if errors.Is(r.Err, context.Canceled) {
			sawCanceled = true
		}
	}
	if !sawCanceled {
		t.Fatal("no experiment was marked cancelled")
	}

	fresh := newTestSession(t, 5, 1)
	if _, err := fresh.Run(context.Background(), &collectSink{}); err != nil {
		t.Fatalf("fresh run after cancellation failed: %v", err)
	}
}

// failingSink errors from one chosen method (after an optional number of
// successful calls) and records every call that reaches it afterwards — the
// disconnecting-HTTP-client stand-in for the sink-error contract tests.
type failingSink struct {
	collectSink
	failOn     string // "row", "progress" or "summary"
	okCalls    int    // calls of the failing method that succeed first
	err        error
	callsAfter int // any sink calls delivered after the error fired
	fired      bool
}

func (s *failingSink) tick(method string) error {
	if s.fired {
		s.callsAfter++
		return nil
	}
	if method == s.failOn {
		if s.okCalls > 0 {
			s.okCalls--
			return nil
		}
		s.fired = true
		return s.err
	}
	return nil
}

func (s *failingSink) Row(ev RowEvent) error {
	if err := s.tick("row"); err != nil {
		return err
	}
	return s.collectSink.Row(ev)
}

func (s *failingSink) Progress(ev ProgressEvent) error {
	if err := s.tick("progress"); err != nil {
		return err
	}
	return s.collectSink.Progress(ev)
}

func (s *failingSink) Summary(ev SummaryEvent) error {
	if err := s.tick("summary"); err != nil {
		return err
	}
	return s.collectSink.Summary(ev)
}

// TestSinkErrorAbortsRun: an error from any Sink method — Row, Progress, or
// Summary — aborts the run, is returned from Run by identity (errors.Is),
// and silences the sink: no further events are delivered after the failing
// call. This is the contract the HTTP server relies on when a streaming
// client disconnects mid-run.
func TestSinkErrorAbortsRun(t *testing.T) {
	for _, failOn := range []string{"row", "progress", "summary"} {
		t.Run(failOn, func(t *testing.T) {
			sinkErr := errors.New("client went away: " + failOn)
			sink := &failingSink{failOn: failOn, err: sinkErr}
			sess := newTestSession(t, 6, 1)
			_, err := sess.Run(context.Background(), sink)
			if !errors.Is(err, sinkErr) {
				t.Fatalf("Run returned %v, want the sink error %v", err, sinkErr)
			}
			if !sink.fired {
				t.Fatal("sink never failed — test exercised nothing")
			}
			if sink.callsAfter != 0 {
				t.Fatalf("%d sink calls delivered after the error — a failed sink must go silent", sink.callsAfter)
			}
		})
	}
}

// TestSinkErrorSkipsRemainingExperiments: a Row error during the first
// experiment cancels the batch, so later experiments are never delivered —
// their results (and rows) stay off the sink entirely rather than running to
// completion against a dead consumer.
func TestSinkErrorSkipsRemainingExperiments(t *testing.T) {
	sinkErr := errors.New("sink full")
	// Let the first experiment's first row through, then fail on the second:
	// the abort happens mid-stream, not at a tidy boundary.
	sink := &failingSink{failOn: "row", okCalls: 1, err: sinkErr}
	sess := newTestSession(t, 6, 1)
	_, err := sess.Run(context.Background(), sink)
	if !errors.Is(err, sinkErr) {
		t.Fatalf("Run returned %v, want the sink error", err)
	}
	for _, r := range sink.results {
		if r.Experiment != sessionScenarios[0] {
			t.Fatalf("result for %s delivered after the sink failed", r.Experiment)
		}
	}
	for _, r := range sink.rows {
		if r.Experiment != sessionScenarios[0] {
			t.Fatalf("row for %s delivered after the sink failed", r.Experiment)
		}
	}
	if len(sink.summaries) != 0 {
		t.Fatal("summary delivered to a failed sink")
	}
}

// TestNewSessionValidation: option errors surface at construction, including
// the registry's did-you-mean suggestion for mistyped experiment names.
func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(WithScenarios("fig7")); err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("NewSession(fig7) = %v, want did-you-mean error", err)
	}
	if _, err := NewSession(WithScale(Scale("huge"))); err == nil {
		t.Fatal("unknown scale should fail")
	}
	if _, err := NewSession(WithParallelism(-1)); err == nil {
		t.Fatal("negative parallelism should fail")
	}
	if _, err := ParseScale("paper"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseScale("galactic"); err == nil {
		t.Fatal("ParseScale should reject unknown names")
	}
	sess, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Experiments(); len(got) != len(ExperimentNames()) {
		t.Fatalf("default selection = %v, want the full registry", got)
	}
	if sess.Parallelism() < 1 {
		t.Fatalf("parallelism = %d, want >= 1 (resolved default)", sess.Parallelism())
	}
}
