// Package qoed is the public face of the study-serving daemon engine: the
// HTTP service that exposes the pkg/qoe experiment catalog over a versioned
// API and streams schema_version 1 NDJSON run output to many concurrent
// clients, with singleflight dedup, a content-addressed result cache, and
// bounded-queue admission control (429 + Retry-After under saturation).
//
// The implementation lives in internal/serve; this package re-exports the
// construction surface so commands and examples — which, per the repository's
// surface guard, consume the system exclusively through pkg/qoe/... — can
// embed the daemon:
//
//	srv := qoed.New(qoed.Config{Workers: 4, QueueDepth: 32})
//	defer srv.Close()
//	http.ListenAndServe(":8080", srv) // srv is an http.Handler
//
// Endpoints: GET /healthz, GET /metrics, GET /v1/catalog, POST /v1/runs,
// GET /v1/runs/{id}, GET /v1/runs/{id}/stream, and the one-shot
// GET /v1/run?experiments=...&scale=...&seed=... whose response is
// byte-compatible with `qoebench -stream -parallel 1` for the same tuple.
// See EXPERIMENTS.md ("Serving studies with qoed") for the API walkthrough
// and backpressure semantics.
package qoed

import "repro/internal/serve"

// Config sizes a Server: worker pool, admission queue, result-cache byte
// budget, Retry-After hint, and an optional log function. Zero values take
// the serve package's defaults.
type Config = serve.Config

// Server is the serving engine — an http.Handler owning the job table,
// worker pool, and result cache. Always Shutdown (or Close) it so the
// workers stop.
type Server = serve.Server

// RunSpec is the canonical identity of one deterministic run; build it with
// Canonicalize when constructing requests programmatically.
type RunSpec = serve.RunSpec

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server { return serve.New(cfg) }

// Canonicalize resolves a raw selection (experiments/scenarios synonyms,
// scale name, seed) into the canonical RunSpec the server dedups and caches
// on — useful for computing the ID/Key a request will land under.
func Canonicalize(experiments, scenarios []string, scale string, seed int64) (RunSpec, error) {
	return serve.Canonicalize(experiments, scenarios, scale, seed)
}
