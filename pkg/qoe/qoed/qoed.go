// Package qoed is the public face of the study-serving daemon engine: the
// HTTP service that exposes the pkg/qoe experiment catalog over a versioned
// API and streams schema_version 1 NDJSON run output to many concurrent
// clients, with singleflight dedup, a content-addressed result cache, and
// bounded-queue admission control (429 + Retry-After under saturation).
//
// The implementation lives in internal/serve; this package re-exports the
// construction surface so commands and examples — which, per the repository's
// surface guard, consume the system exclusively through pkg/qoe/... — can
// embed the daemon:
//
//	srv := qoed.New(qoed.Config{Workers: 4, QueueDepth: 32})
//	defer srv.Close()
//	http.ListenAndServe(":8080", srv) // srv is an http.Handler
//
// Endpoints: GET /healthz, GET /metrics, GET /v1/catalog, POST /v1/runs,
// GET /v1/runs/{id}, GET /v1/runs/{id}/stream, and the one-shot
// GET /v1/run?experiments=...&scale=...&seed=... whose response is
// byte-compatible with `qoebench -stream -parallel 1` for the same tuple.
// See EXPERIMENTS.md ("Serving studies with qoed") for the API walkthrough
// and backpressure semantics.
// For distributed studies the daemon plays one of two extra roles (see
// EXPERIMENTS.md "Distributed studies"): a WORKER serves shard-range
// sub-jobs at GET /v1/shard, and a COORDINATOR — built with NewFabric and a
// Config whose Population/Fabric fields carry the coordinator — splits each
// canonical pop-* study across its worker pool and reduces the returned
// aggregates into the byte-identical single-node stream.
//
// The result tier is hierarchical — RAM → disk → peers → simulate.
// Config.StoreDir mounts a content-addressed disk spill store under the LRU
// (atomic checksummed writes, corrupt entries quarantined and re-simulated,
// survives restarts); Config.Peers lists sibling daemons whose finished
// tiers are probed before paying for a simulation; and Server.Prewarm walks
// a grid of hot tuples through normal admission at boot. See EXPERIMENTS.md
// "Durable cache & fleet warming".
package qoed

import (
	"io"
	"log/slog"

	"repro/internal/fabric"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// Config sizes a Server: worker pool, admission queue, result-cache byte
// budget, Retry-After hint, and an optional log function. Zero values take
// the serve package's defaults.
type Config = serve.Config

// Server is the serving engine — an http.Handler owning the job table,
// worker pool, and result cache. Always Shutdown (or Close) it so the
// workers stop.
type Server = serve.Server

// RunSpec is the canonical identity of one deterministic run; build it with
// Canonicalize when constructing requests programmatically.
type RunSpec = serve.RunSpec

// New builds a Server and starts its worker pool. If Config.StoreDir is set
// but the spill store cannot be opened, New degrades to serving without the
// durable tier; use Open when that must be fatal instead.
func New(cfg Config) *Server { return serve.New(cfg) }

// Open builds a Server like New but fails when the configured disk spill
// store cannot be opened, instead of silently serving memory-only.
func Open(cfg Config) (*Server, error) { return serve.Open(cfg) }

// PrewarmGrid declares the hot tuple set a daemon computes at boot; see
// LoadPrewarmGrid for the JSON file format and DefaultPrewarmGrid for the
// catalog-derived default.
type PrewarmGrid = serve.PrewarmGrid

// PrewarmTuple is one experiments × scales × seeds cross-product group of a
// prewarm grid.
type PrewarmTuple = serve.PrewarmTuple

// PrewarmStats reports one prewarm walk: tuples computed, tuples already
// warm in some tier, tuples failed.
type PrewarmStats = serve.PrewarmStats

// LoadPrewarmGrid reads a prewarm grid from a JSON file.
func LoadPrewarmGrid(path string) (PrewarmGrid, error) { return serve.LoadPrewarmGrid(path) }

// DefaultPrewarmGrid derives the hot set from the catalog: every experiment
// at quick scale, seed 1.
func DefaultPrewarmGrid() PrewarmGrid { return serve.DefaultPrewarmGrid() }

// Canonicalize resolves a raw selection (experiments/scenarios synonyms,
// scale name, seed) into the canonical RunSpec the server dedups and caches
// on — useful for computing the ID/Key a request will land under.
func Canonicalize(experiments, scenarios []string, scale string, seed int64) (RunSpec, error) {
	return serve.Canonicalize(experiments, scenarios, scale, seed)
}

// CanonicalizeShard builds the canonical RunSpec of one shard-range
// sub-job of a population study (the tuple behind GET /v1/shard). cell
// addresses one grid cell of a multi-cell (adaptive) study; pass 0 for the
// canonical population runs.
func CanonicalizeShard(study, scale string, seed int64, lo, hi, cell int) (RunSpec, error) {
	return serve.CanonicalizeShard(study, scale, seed, lo, hi, cell)
}

// FabricConfig configures a distributed-study coordinator: the worker pool
// URLs, the (scale, master seed) tuple it serves, and the dispatch/retry
// policy.
type FabricConfig = fabric.Config

// Fabric is the coordinator: it splits canonical pop-* studies into
// shard-range sub-jobs, dispatches them across the worker pool with bounded
// in-flight jobs and retry-with-backoff, and reduces the results in shard
// order — byte-identical to a single-node run. It implements
// qoe.PopulationBackend; wire it into a daemon via Config.Population and
// Config.Fabric, or into a local session via qoe.WithPopulationBackend.
type Fabric = fabric.Coordinator

// FabricPlan is the deterministic sub-job split of one study.
type FabricPlan = fabric.Plan

// FabricWorkerStatus is one pool member's health as reported by
// GET /v1/fabric/workers.
type FabricWorkerStatus = fabric.WorkerStatus

// NewFabric builds a coordinator over a worker pool.
func NewFabric(cfg FabricConfig) (*Fabric, error) { return fabric.New(cfg) }

// Tracer records run-lifecycle spans into a bounded in-memory ring of
// traces, inspectable at GET /debug/trace/{id}. Trace IDs are deterministic
// (a run's trace is keyed by its canonical run ID), and a distributed study
// stitches its workers' spans into the coordinator's single trace. Wire one
// into Config.Tracer; a nil tracer disables tracing at the cost of one
// branch per site.
type Tracer = telemetry.Tracer

// TracerConfig sizes a Tracer: ring bounds and the optional NDJSON span-log
// writer (the -trace-log file).
type TracerConfig = telemetry.Config

// NewTracer builds a Tracer.
func NewTracer(cfg TracerConfig) *Tracer { return telemetry.New(cfg) }

// NewLogger builds the daemon's structured logger writing to w. level is
// one of debug, info, warn, error (default info); format is text or json
// (default text). Wire it into Config.Logger and FabricConfig.Logger.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return telemetry.NewLogger(w, level, format)
}
