package qoe

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestLoadPage(t *testing.T) {
	res, err := LoadPage(PageLoad{Site: "wikipedia.org", Network: "DSL", Protocol: "QUIC", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.SI <= 0 || res.PLT <= 0 {
		t.Fatalf("implausible load: %+v", res)
	}
	if res.Objects == 0 || res.Objects > res.ObjectsTotal {
		t.Fatalf("object accounting: %d/%d", res.Objects, res.ObjectsTotal)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no visual-progress trace")
	}
	// Scenario-library networks resolve too.
	if _, err := LoadPage(PageLoad{Site: "wikipedia.org", Network: "congested-wifi", Protocol: "TCP", Seed: 1}); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []PageLoad{
		{Site: "nope.example", Network: "DSL", Protocol: "QUIC"},
		{Site: "wikipedia.org", Network: "carrier-pigeon", Protocol: "QUIC"},
		{Site: "wikipedia.org", Network: "DSL", Protocol: "SCTP"},
	} {
		if _, err := LoadPage(bad); err == nil {
			t.Fatalf("LoadPage(%+v) should fail", bad)
		}
	}
}

func TestCompareAB(t *testing.T) {
	out, err := CompareAB(context.Background(), ABStudy{
		Site: "etsy.com", Network: "MSS", ProtoA: "QUIC", ProtoB: "TCP",
		Recordings: 2, Voters: 120, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Votes != 120 {
		t.Fatalf("votes = %d, want one per voter", out.Votes)
	}
	sum := out.ShareA + out.ShareNone + out.ShareB
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares do not partition: %v", sum)
	}
	if out.Noticed.Level != 0.99 || out.Noticed.Lo > out.Noticed.Point || out.Noticed.Hi < out.Noticed.Point {
		t.Fatalf("bad interval: %+v", out.Noticed)
	}
	// On the satellite link the gap is seconds; the crowd should notice.
	if out.Noticed.Point < 0.5 {
		t.Fatalf("MSS QUIC-vs-TCP notice share %.2f implausibly low", out.Noticed.Point)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompareAB(ctx, ABStudy{Site: "etsy.com", Network: "DSL", ProtoA: "QUIC", ProtoB: "TCP"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled CompareAB returned %v", err)
	}
}

func TestRatePanel(t *testing.T) {
	out, err := RatePanel(context.Background(), RatingPanel{
		Site: "nytimes.com", Network: "LTE", Environment: "free time", Voters: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Environment != "Free Time" {
		t.Fatalf("environment = %q", out.Environment)
	}
	if len(out.Ratings) != len(ProtocolNames()) {
		t.Fatalf("ratings = %d, want one per stack", len(out.Ratings))
	}
	for _, r := range out.Ratings {
		if r.Mean.Point <= 0 || r.Label == "" {
			t.Fatalf("implausible rating %+v", r)
		}
	}
	if out.ANOVA.P < 0 || out.ANOVA.P > 1 {
		t.Fatalf("ANOVA p = %v", out.ANOVA.P)
	}
	if out.ANOVA.String() == "" {
		t.Fatal("empty ANOVA rendering")
	}

	if _, err := RatePanel(context.Background(), RatingPanel{Site: "nytimes.com", Network: "LTE", Environment: "underwater"}); err == nil || !strings.Contains(err.Error(), "unknown environment") {
		t.Fatalf("bad environment returned %v", err)
	}
}

func TestSweep(t *testing.T) {
	out, err := Sweep(context.Background(), SweepRequest{
		Dimension: "speed", Base: "LTE", ProtoA: "QUIC", ProtoB: "TCP",
		Values: []float64{0.5, 4}, Reps: 1, PanelSize: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 2 {
		t.Fatalf("points = %d", len(out.Points))
	}
	var buf bytes.Buffer
	out.Render(&buf)
	if !strings.Contains(buf.String(), "Sweep speed over LTE") {
		t.Fatalf("render: %q", buf.String())
	}
	if _, err := Sweep(context.Background(), SweepRequest{Dimension: "altitude", Base: "LTE", ProtoA: "QUIC", ProtoB: "TCP", Values: []float64{1}}); err == nil {
		t.Fatal("unknown dimension should fail")
	}
}

func TestCatalogs(t *testing.T) {
	if len(ExperimentNames()) == 0 || len(Experiments()) != len(ExperimentNames()) {
		t.Fatal("experiment catalog inconsistent")
	}
	if len(Sites()) != 36 {
		t.Fatalf("sites = %d, want the 36-site corpus", len(Sites()))
	}
	if len(Networks()) != 4 || len(Scenarios()) != 4 {
		t.Fatalf("networks = %d, scenarios = %d", len(Networks()), len(Scenarios()))
	}
	if len(NetworkNames()) != len(Networks())+len(Scenarios()) {
		t.Fatal("NetworkNames should span Table 2 plus the library")
	}
	if len(ProtocolNames()) != 5 {
		t.Fatalf("protocols = %d", len(ProtocolNames()))
	}
	if len(Environments()) != 3 {
		t.Fatalf("environments = %v", Environments())
	}
	if DeriveSeed(7, "a") == DeriveSeed(7, "b") {
		t.Fatal("DeriveSeed must separate names")
	}
}
