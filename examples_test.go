package repro_test

// Smoke test for the runnable API tours: every examples/* binary must build
// and run to completion with non-empty output. Examples are the first code
// a reader executes; this keeps them from rotting as internal APIs move.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs every example binary")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
	bindir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			done := make(chan error, 1)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run failed: %v\nstderr:\n%s", err, stderr.String())
				}
			case <-time.After(3 * time.Minute):
				cmd.Process.Kill()
				t.Fatalf("example did not finish within 3 minutes")
			}
			if stdout.Len() == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
