// Package repro reproduces "Perceiving QUIC: Do Users Notice or Even Care?"
// (Rüth, Wolsing, Wehrle, Hohlfeld — CoNEXT 2019) as a self-contained Go
// library: a deterministic Mahimahi-style network emulator, segment-level
// TCP(+TLS) and gQUIC transport models with Cubic/BBRv1 and fq pacing, an
// HTTP/2-vs-HTTP/3 application layer, a Chromium-like page loader over a
// 36-site synthetic corpus, visual Web metrics (FVC/SI/VC85/LVC/PLT), and a
// psychometric simulation of the paper's two user studies with its full
// conformance-filtering pipeline.
//
// Entry points:
//
//	pkg/qoe       — the public, versioned SDK: everything below reaches the
//	                system through it
//	cmd/qoed      — the study-serving daemon: the full catalog over HTTP
//	                with singleflight dedup, a result cache, and NDJSON
//	                streaming (see EXPERIMENTS.md "Serving studies")
//	cmd/qoebench  — regenerate every table and figure of the evaluation
//	                (add -stream for the schema_version 1 NDJSON row stream,
//	                -timeout to bound the run)
//	cmd/pageload  — load one site under one configuration
//	cmd/netsweep  — locate the noticeability crossover along one dimension
//	cmd/qoeload   — SLO-gated load harness: hundreds of concurrent clients
//	                against an in-process qoed, mixed cold/cached/deduped
//	                blend (see EXPERIMENTS.md "Load-proving the daemon")
//	examples/     — runnable SDK tours (examples/quickstart is the
//	                one-minute Session.Run(ctx, sink) introduction;
//	                examples/remotestudy serves and consumes studies over
//	                HTTP in one process)
//
// The SDK's pivot is qoe.Session: functional options (WithScenarios,
// WithScale, WithSeed, WithParallelism) select and configure a run, and
// Session.Run(ctx, sink) executes it with full context plumbing —
// cancellation stops the testbed prewarm between conditions, skips
// unstarted experiments, and winds million-vote population shard loops down
// within one participant's worth of work. Results stream to a qoe.Sink as
// typed events (RowEvent / ProgressEvent / SummaryEvent, wire-versioned via
// qoe.SchemaVersion); adapter sinks reproduce the classic text/CSV/JSON
// documents byte-for-byte, which is how the goldens and qoebench's output
// survive the redesign unchanged. A surface guard test keeps cmd/ and
// examples/ from importing internal packages directly.
//
// Experiments are first-class: each table, figure, ablation, and extension
// registers itself in internal/experiments as an Experiment (declaring the
// recording conditions it needs, running under a context against a
// caller-supplied shared core.Testbed, and returning a Result that renders
// as text, CSV, or JSON). internal/runner executes any set of registered
// experiments off one shared testbed: it merges their declared condition
// grids into a single prewarm plan, records each (site × network ×
// protocol) condition exactly once (the testbed's singleflight cache
// deduplicates concurrent misses), and runs the experiments on a bounded
// worker pool with deterministic per-experiment seeds — so `qoebench all`
// does the transport/browser simulation work once, not once per experiment.
// RunContext streams completed results to hooks in input order, which is
// what Session builds its ordered event stream on; the old batch-only
// runner.Run and the per-experiment convenience functions remain as
// deprecated shims for one release.
//
// The event core is allocation-free in steady state: simulator timers,
// link frames, wire packets, and in-flight records all come from free lists
// and are recycled, hot callbacks are scheduled as a function plus pre-bound
// argument rather than a closure, and study loops reuse their participant
// models and scratch — so a full `qoebench all` batch is GC-quiet and ~3x
// faster than the closure-per-event design it replaced (BENCH_pr*.json,
// diffable with tools/benchdiff), while every golden output stays
// byte-identical. qoebench's -cpuprofile, -memprofile, and -bench-trace
// flags expose the run to the standard Go profiling tools.
//
// The serving layer (internal/serve, fronted publicly by pkg/qoe/qoed and
// cmd/qoed) turns the SDK into the hosted study service the paper actually
// operated: because a run is a pure function of its canonical tuple (sorted
// experiments, scale, seed, schema version), N concurrent identical requests
// share ONE simulation through a singleflight job table and broadcast
// buffer, finished runs replay byte-identically from a content-addressed LRU
// cache with zero simulation, and a bounded worker pool + queue sheds excess
// load with 429 + Retry-After. A sink error aborts Session.Run promptly with
// that error — the contract direct stream consumers rely on; the daemon's
// own sink is its in-memory broadcast buffer, so it handles client
// disconnects one level up, via subscription bookkeeping that cancels
// abandoned one-shot runs through the same context plumbing Ctrl-C and
// qoebench's -timeout use. qoe.Client consumes a served daemon with the same
// Sink interfaces a local Session feeds, via qoe.DecodeStream.
//
// Beyond the paper's grid, internal/simnet carries a named scenario library
// (fast-fiber, congested-wifi, lossy-satellite, throttled-3g) and
// internal/population a sharded population-scale study engine: the pop-*
// experiments stream over a million synthetic votes per run through online
// aggregators (internal/stats: Welford, streaming histograms, Wilson
// binomial counters) with memory bounded by the stimulus grid, answering
// the paper's "would this hold at scale?" question. Golden-file tests under
// testdata/golden pin every experiment's quick-scale output byte-for-byte.
//
// See DESIGN.md for the substitution ledger (what the paper's hardware and
// human apparatus was replaced with, and why that preserves behaviour) and
// EXPERIMENTS.md for how to regenerate the paper's artifacts via qoebench.
package repro
