// Package repro reproduces "Perceiving QUIC: Do Users Notice or Even Care?"
// (Rüth, Wolsing, Wehrle, Hohlfeld — CoNEXT 2019) as a self-contained Go
// library: a deterministic Mahimahi-style network emulator, segment-level
// TCP(+TLS) and gQUIC transport models with Cubic/BBRv1 and fq pacing, an
// HTTP/2-vs-HTTP/3 application layer, a Chromium-like page loader over a
// 36-site synthetic corpus, visual Web metrics (FVC/SI/VC85/LVC/PLT), and a
// psychometric simulation of the paper's two user studies with its full
// conformance-filtering pipeline.
//
// Entry points:
//
//	cmd/qoebench  — regenerate every table and figure of the evaluation
//	cmd/pageload  — load one site under one configuration
//	examples/     — runnable API tours
//
// See DESIGN.md for the substitution ledger (what the paper's hardware and
// human apparatus was replaced with, and why that preserves behaviour) and
// EXPERIMENTS.md for paper-vs-measured comparisons.
package repro
