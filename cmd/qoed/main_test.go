package main

// Multi-process end-to-end tests for the distributed study fabric: real
// qoed worker and coordinator processes on random ports, driven over HTTP,
// including a SIGKILLed worker the coordinator must route around. These are
// the only tests in the repo that exercise the fabric across process
// boundaries — everything else fakes workers in-process.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildQoed compiles the daemon binary once per test.
func buildQoed(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qoed")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	return bin
}

// daemon is one live qoed process.
type daemon struct {
	cmd  *exec.Cmd
	addr string // host:port parsed from the readiness line
}

func (d *daemon) url() string { return "http://" + d.addr }

// kill delivers SIGKILL — the fault the fabric must route around.
func (d *daemon) kill() { d.cmd.Process.Kill() }

// startDaemon boots the binary with -addr 127.0.0.1:0 plus extra args and
// blocks until the readiness line ("qoed: listening on <addr>") reports the
// bound port. Stderr keeps draining in the background so the process never
// blocks on a full pipe.
func startDaemon(t *testing.T, bin string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	const marker = "qoed: listening on "
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, marker); i >= 0 {
				select {
				case ready <- line[i+len(marker):]:
				default:
				}
			}
			t.Logf("[%s] %s", filepath.Base(bin), line)
		}
	}()
	select {
	case d.addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon %v never reported readiness", args)
	}
	return d
}

// fetch GETs a path from a daemon and returns the body.
func fetch(t *testing.T, d *daemon, path string) []byte {
	t.Helper()
	resp, err := http.Get(d.url() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", path, resp.StatusCode, body)
	}
	return body
}

// TestDistributedStudyE2E is the fabric's multi-process proof: three real
// worker daemons plus coordinators at two cluster sizes, all streaming the
// canonical population studies byte-identically to a plain single-node
// daemon — then a SIGKILLed worker, which the coordinator must absorb with
// retries on the survivors without changing a single output byte.
func TestDistributedStudyE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a multi-process cluster")
	}
	bin := buildQoed(t)

	workers := make([]*daemon, 3)
	for i := range workers {
		workers[i] = startDaemon(t, bin, "-worker")
	}
	single := startDaemon(t, bin)
	coord3 := startDaemon(t, bin, "-coordinator",
		workers[0].url()+","+workers[1].url()+","+workers[2].url())
	coord1 := startDaemon(t, bin, "-coordinator", workers[0].url())

	const study = "/v1/run?experiments=pop-ab,pop-rating&scale=quick&seed=1"
	want := fetch(t, single, study)
	if len(want) == 0 || !bytes.Contains(want, []byte(`"type":"summary"`)) {
		t.Fatalf("single-node stream looks incomplete:\n%.200s", want)
	}
	if got := fetch(t, coord3, study); !bytes.Equal(got, want) {
		t.Fatal("3-worker distributed stream differs from single-node run")
	}
	if got := fetch(t, coord1, study); !bytes.Equal(got, want) {
		t.Fatal("1-worker distributed stream differs from single-node run")
	}

	// Fault injection: SIGKILL a worker the 3-worker coordinator believes is
	// healthy, then run a fresh (uncached) study. Round-robin guarantees the
	// dead worker is dispatched to, so the run only succeeds via retry on the
	// survivors — and must still match the single-node bytes exactly.
	workers[2].kill()
	const study2 = "/v1/run?experiments=pop-ab,pop-rating&scale=quick&seed=2"
	want2 := fetch(t, single, study2)
	if got := fetch(t, coord3, study2); !bytes.Equal(got, want2) {
		t.Fatal("distributed stream with a SIGKILLed worker differs from single-node run")
	}

	// The detour shows up in the coordinator's fabric metrics ...
	var metrics struct {
		Fabric struct {
			ShardRetries   int64 `json:"shard_retries"`
			WorkerFailures int64 `json:"worker_failures"`
			Reduced        int64 `json:"studies_reduced"`
		} `json:"fabric"`
	}
	if err := json.Unmarshal(fetch(t, coord3, "/metrics"), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Fabric.ShardRetries == 0 || metrics.Fabric.WorkerFailures == 0 {
		t.Errorf("fabric metrics show no retries/failures after SIGKILL: %+v", metrics.Fabric)
	}
	if metrics.Fabric.Reduced != 4 {
		t.Errorf("studies_reduced = %d, want 4 (two studies, two runs)", metrics.Fabric.Reduced)
	}

	// ... and in the worker-pool status endpoint.
	var pool struct {
		Workers []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
		} `json:"workers"`
	}
	if err := json.Unmarshal(fetch(t, coord3, "/v1/fabric/workers"), &pool); err != nil {
		t.Fatalf("decoding /v1/fabric/workers: %v", err)
	}
	healthy := 0
	for _, w := range pool.Workers {
		if w.Healthy {
			healthy++
		}
	}
	if healthy != 2 {
		t.Errorf("pool reports %d healthy workers after SIGKILL, want 2: %+v", healthy, pool.Workers)
	}
}

// TestCoordinatorRefusesDeadPool: a coordinator whose whole pool is
// unreachable must exit at boot with a clean error, not serve studies it
// can never complete.
func TestCoordinatorRefusesDeadPool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildQoed(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-coordinator", "http://127.0.0.1:9")
	out, err := cmd.CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.Success() {
		t.Fatalf("expected failing exit, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "workers are healthy") {
		t.Fatalf("boot error does not explain the dead pool:\n%s", out)
	}
}

// TestWorkerAndCoordinatorFlagsAreExclusive pins the CLI contract.
func TestWorkerAndCoordinatorFlagsAreExclusive(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildQoed(t)
	cmd := exec.Command(bin, "-worker", "-coordinator", "http://127.0.0.1:1")
	out, err := cmd.CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 2 {
		t.Fatalf("expected usage exit 2, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "usage: qoed") {
		t.Fatalf("missing usage message:\n%s", out)
	}
}
