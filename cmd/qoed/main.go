// Command qoed is the study-serving daemon: a long-running HTTP service
// exposing the full experiment catalog of the QUIC-QoE reproduction, built
// for many concurrent participants the way the paper's hosted study was.
//
// Usage:
//
//	qoed [-addr :8080] [-workers N] [-queue N] [-cache-mb MB]
//	     [-retry-after DUR] [-drain DUR]
//	     [-store DIR] [-peers URL,URL,...] [-prewarm PATH|default]
//	     [-worker | -coordinator URL,URL,...]
//	     [-log-level LVL] [-log-format text|json] [-trace-log PATH]
//	     [-debug-addr ADDR]
//
// Observability: every run records a lifecycle trace (admission → queue wait
// → simulate → publish, plus disk/peer/fabric spans) under its deterministic
// run ID, inspectable at GET /debug/trace/{id}; `-trace-log spans.ndjson`
// tees finished spans to a file. `/metrics?format=prom` renders the counter
// map as Prometheus text exposition with per-class latency summaries.
// `-log-level`/`-log-format` shape the structured event log on stderr, and
// `-debug-addr 127.0.0.1:6060` serves net/http/pprof off the study port.
//
// Durable result tier: `-store DIR` mounts a content-addressed disk spill
// store under the RAM cache — finished streams are written through with
// atomic checksummed framing, evictions demote to disk, disk hits promote
// back, and a restart serves its whole history with zero re-simulation.
// `-peers url1,url2,...` fills misses from sibling daemons' finished tiers
// before simulating (a coordinator with no explicit peers uses its worker
// pool). `-prewarm grid.json` (or `-prewarm default` for the catalog's hot
// set) computes the grid's tuples through normal admission at boot, one at
// a time so live traffic is never starved.
//
// Distributed studies: `-worker` announces the daemon as a shard worker (it
// serves shard-range population sub-jobs at GET /v1/shard — every daemon
// does, the flag marks the role), and `-coordinator url1,url2,...` makes it
// a fabric coordinator over that worker pool: each canonical pop-ab /
// pop-rating study a served session runs is split into shard-range
// sub-jobs, dispatched across the pool with retry-with-backoff, and reduced
// in shard order back into the byte-identical single-node stream. The
// coordinator exposes its pool at GET /v1/fabric/workers and its dispatch
// counters under "fabric" in /metrics.
//
// Because every run is a pure function of its canonical tuple (sorted
// experiments, scale, seed, schema version), the daemon never simulates the
// same study twice at once: concurrent identical requests share one
// simulation via singleflight broadcast, finished runs replay from a
// content-addressed LRU cache with zero simulation, and a bounded worker
// pool + queue sheds excess load with 429 + Retry-After instead of melting.
//
// Endpoints:
//
//	GET  /healthz                 liveness (503 while draining)
//	GET  /metrics                 expvar counters (runs started/deduped/
//	                              cache-hit/rejected, queue depth, bytes)
//	GET  /v1/catalog              experiments, networks, scenarios, scales
//	POST /v1/runs                 start a durable run (JSON body)
//	GET  /v1/runs/{id}            run status
//	GET  /v1/runs/{id}/stream     NDJSON event stream of a run
//	GET  /v1/run?experiments=...  one-shot: admit + stream in one request,
//	                              byte-compatible with `qoebench -stream`
//	GET  /v1/shard?study=...      worker: stream one shard range's aggregates
//	GET  /v1/fabric/workers       coordinator: worker pool health
//	GET  /debug/trace/{id}        stitched lifecycle trace of one run
//
// SIGINT/SIGTERM drains gracefully: admission stops, in-flight runs get
// -drain to finish, then are cancelled cleanly through the same context
// plumbing qoebench's Ctrl-C uses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/pkg/qoe/qoed"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = one per core)")
	queue := flag.Int("queue", 16, "max queued runs before shedding load with 429")
	cacheMB := flag.Int64("cache-mb", 64, "result cache budget in MiB (<= 0 disables caching)")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "Retry-After hint on 429 responses")
	drain := flag.Duration("drain", 30*time.Second, "grace period for in-flight runs at shutdown")
	workerRole := flag.Bool("worker", false, "announce this daemon as a distributed-study shard worker")
	coordinator := flag.String("coordinator", "", "comma-separated worker URLs; distribute pop-* studies across them")
	storeDir := flag.String("store", "", "disk spill store directory (durable result tier; empty disables)")
	peers := flag.String("peers", "", "comma-separated peer daemon URLs to fill cache misses from (coordinator default: its worker pool)")
	prewarm := flag.String("prewarm", "", "prewarm grid JSON file, or 'default' for the catalog hot set, computed at boot")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	traceLog := flag.String("trace-log", "", "append finished spans as NDJSON to this file (tracing itself is always on)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qoed [-addr :8080] [-workers N] [-queue N] [-cache-mb MB] [-retry-after DUR] [-drain DUR] [-store DIR] [-peers URL,...] [-prewarm PATH|default] [-worker | -coordinator URL,URL,...] [-log-level LVL] [-log-format FMT] [-trace-log PATH] [-debug-addr ADDR]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 || (*workerRole && *coordinator != "") {
		flag.Usage()
		os.Exit(2)
	}

	// Two log planes: the std logger keeps the daemon's own lifecycle lines
	// (the "qoed: listening on ..." readiness contract scripts parse), while
	// the slog logger carries the serving layers' structured events at the
	// operator-chosen level and format.
	logger := log.New(os.Stderr, "", log.LstdFlags)
	slogger, err := qoed.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		logger.Fatalf("qoed: %v", err)
	}
	tracerCfg := qoed.TracerConfig{}
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("qoed: trace log: %v", err)
		}
		defer f.Close()
		tracerCfg.LogW = f
	}
	tracer := qoed.NewTracer(tracerCfg)
	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		// <= 0 disables caching outright; serve.Config treats exactly zero
		// as "use the default", which is not what a zero budget asks for.
		cacheBytes = -1
	}
	cfg := qoed.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: cacheBytes,
		RetryAfter: *retryAfter,
		Logf:       logger.Printf,
		Logger:     slogger,
		Tracer:     tracer,
		StoreDir:   *storeDir,
		Peers:      splitURLs(*peers),
	}
	if *coordinator != "" {
		pool := splitURLs(*coordinator)
		fab, err := qoed.NewFabric(qoed.FabricConfig{Workers: pool, Logger: slogger})
		if err != nil {
			logger.Fatalf("qoed: %v", err)
		}
		if err := fab.CheckWorkers(context.Background()); err != nil {
			logger.Fatalf("qoed: %v", err)
		}
		cfg.Fabric = fab
		if len(cfg.Peers) == 0 {
			// A coordinator's workers hold the fleet's warm bytes; they are
			// the natural peer set when none is named explicitly.
			cfg.Peers = pool
		}
		logger.Printf("qoed: coordinating %d workers", len(pool))
	}
	if *workerRole {
		logger.Printf("qoed: serving as shard worker")
	}
	if len(cfg.Peers) > 0 {
		logger.Printf("qoed: filling cache misses from %d peers", len(cfg.Peers))
	}
	// A requested-but-broken store is fatal: the operator asked for restart
	// persistence, and a silently memory-only daemon would betray that.
	srv, err := qoed.Open(cfg)
	if err != nil {
		logger.Fatalf("qoed: %v", err)
	}
	if *storeDir != "" {
		logger.Printf("qoed: durable result store at %s", *storeDir)
	}

	// Resolve the prewarm grid before binding the port: a bad grid file is a
	// boot error, not something to discover after announcing readiness.
	var prewarmSpecs []qoed.RunSpec
	if *prewarm != "" {
		grid := qoed.DefaultPrewarmGrid()
		if *prewarm != "default" {
			var gerr error
			if grid, gerr = qoed.LoadPrewarmGrid(*prewarm); gerr != nil {
				logger.Fatalf("qoed: %v", gerr)
			}
		}
		var gerr error
		if prewarmSpecs, gerr = grid.Specs(); gerr != nil {
			logger.Fatalf("qoed: %v", gerr)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("qoed: %v", err)
	}
	// This exact line is the daemon's readiness contract: scripts (and the
	// CI smoke job) parse the bound address from it, which is what makes
	// `-addr 127.0.0.1:0` usable for hermetic harnesses.
	logger.Printf("qoed: listening on %s", ln.Addr())

	if *debugAddr != "" {
		// pprof registers on DefaultServeMux at import; serving the nil mux
		// on a separate opt-in listener keeps the profiling surface off the
		// study-serving port entirely.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Fatalf("qoed: debug listener: %v", err)
		}
		logger.Printf("qoed: pprof on http://%s/debug/pprof/", dln.Addr())
		go func() { _ = http.Serve(dln, nil) }()
	}

	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if len(prewarmSpecs) > 0 {
		// In the background, one tuple at a time: prewarm fills boot idle
		// capacity without ever starving live traffic, and a shutdown signal
		// stops the walk mid-grid.
		logger.Printf("qoed: prewarming %d tuples", len(prewarmSpecs))
		go func() {
			stats := srv.Prewarm(ctx, prewarmSpecs)
			logger.Printf("qoed: prewarm done: %d computed, %d already warm, %d failed",
				stats.Warmed, stats.AlreadyWarm, stats.Failed)
		}()
	}
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		logger.Fatalf("qoed: serve: %v", err)
	}
	stop() // a second signal kills immediately instead of waiting for drain

	logger.Printf("qoed: draining (up to %v for in-flight runs)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Printf("qoed: drain deadline hit, in-flight runs cancelled: %v", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("qoed: http shutdown: %v", err)
	}
	logger.Printf("qoed: stopped")
}

// splitURLs parses a comma-separated URL list, dropping empty elements.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}
