// Command qoed is the study-serving daemon: a long-running HTTP service
// exposing the full experiment catalog of the QUIC-QoE reproduction, built
// for many concurrent participants the way the paper's hosted study was.
//
// Usage:
//
//	qoed [-addr :8080] [-workers N] [-queue N] [-cache-mb MB]
//	     [-retry-after DUR] [-drain DUR]
//
// Because every run is a pure function of its canonical tuple (sorted
// experiments, scale, seed, schema version), the daemon never simulates the
// same study twice at once: concurrent identical requests share one
// simulation via singleflight broadcast, finished runs replay from a
// content-addressed LRU cache with zero simulation, and a bounded worker
// pool + queue sheds excess load with 429 + Retry-After instead of melting.
//
// Endpoints:
//
//	GET  /healthz                 liveness (503 while draining)
//	GET  /metrics                 expvar counters (runs started/deduped/
//	                              cache-hit/rejected, queue depth, bytes)
//	GET  /v1/catalog              experiments, networks, scenarios, scales
//	POST /v1/runs                 start a durable run (JSON body)
//	GET  /v1/runs/{id}            run status
//	GET  /v1/runs/{id}/stream     NDJSON event stream of a run
//	GET  /v1/run?experiments=...  one-shot: admit + stream in one request,
//	                              byte-compatible with `qoebench -stream`
//
// SIGINT/SIGTERM drains gracefully: admission stops, in-flight runs get
// -drain to finish, then are cancelled cleanly through the same context
// plumbing qoebench's Ctrl-C uses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/qoe/qoed"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = one per core)")
	queue := flag.Int("queue", 16, "max queued runs before shedding load with 429")
	cacheMB := flag.Int64("cache-mb", 64, "result cache budget in MiB (<= 0 disables caching)")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "Retry-After hint on 429 responses")
	drain := flag.Duration("drain", 30*time.Second, "grace period for in-flight runs at shutdown")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qoed [-addr :8080] [-workers N] [-queue N] [-cache-mb MB] [-retry-after DUR] [-drain DUR]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		// <= 0 disables caching outright; serve.Config treats exactly zero
		// as "use the default", which is not what a zero budget asks for.
		cacheBytes = -1
	}
	srv := qoed.New(qoed.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: cacheBytes,
		RetryAfter: *retryAfter,
		Logf:       logger.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("qoed: %v", err)
	}
	// This exact line is the daemon's readiness contract: scripts (and the
	// CI smoke job) parse the bound address from it, which is what makes
	// `-addr 127.0.0.1:0` usable for hermetic harnesses.
	logger.Printf("qoed: listening on %s", ln.Addr())

	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		logger.Fatalf("qoed: serve: %v", err)
	}
	stop() // a second signal kills immediately instead of waiting for drain

	logger.Printf("qoed: draining (up to %v for in-flight runs)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Printf("qoed: drain deadline hit, in-flight runs cancelled: %v", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("qoed: http shutdown: %v", err)
	}
	logger.Printf("qoed: stopped")
}
