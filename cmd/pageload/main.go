// Command pageload loads a single site from the corpus under one network
// and protocol configuration and prints the visual metrics and transport
// counters — the smallest way to poke at the testbed.
//
// Usage:
//
//	pageload [-site wikipedia.org] [-net DSL] [-proto QUIC] [-seed N] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/webpage"
)

func main() {
	siteName := flag.String("site", "wikipedia.org", "site from the 36-site corpus")
	netName := flag.String("net", "DSL", "network: DSL, LTE, DA2GC, MSS")
	protoName := flag.String("proto", "QUIC", "protocol: TCP, TCP+, TCP+BBR, QUIC, QUIC+BBR, QUIC-0RTT")
	seed := flag.Int64("seed", 1, "random seed")
	trace := flag.Bool("trace", false, "print the visual-progress trace")
	list := flag.Bool("list", false, "list corpus sites and exit")
	flag.Parse()

	if *list {
		for _, s := range webpage.Corpus() {
			fmt.Printf("%-20s %4d objects %8.1f KB %3d hosts\n",
				s.Name, len(s.Objects), float64(s.TotalBytes())/1024, s.HostCount())
		}
		return
	}

	site := webpage.ByName(*siteName)
	if site == nil {
		fmt.Fprintf(os.Stderr, "pageload: unknown site %q (try -list)\n", *siteName)
		os.Exit(2)
	}
	net, err := simnet.NetworkByName(*netName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pageload:", err)
		os.Exit(2)
	}
	proto, err := core.Protocol(*protoName, net)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pageload:", err)
		os.Exit(2)
	}

	res := browser.Load(site, browser.Config{Network: net, Proto: proto, Seed: *seed})
	r := res.Report
	fmt.Printf("%s over %s via %s (seed %d)\n", site.Name, net.Name, proto.Name(), *seed)
	fmt.Printf("  objects %d/%d  conns %d  retransmissions %d  rtos %d  complete %v\n",
		res.Objects, len(site.Objects), res.Conns, res.Retransmissions, res.RTOs, res.Trace.Completed)
	fmt.Printf("  FVC  %10s\n", r.FVC.Round(time.Millisecond))
	fmt.Printf("  SI   %10s\n", r.SI.Round(time.Millisecond))
	fmt.Printf("  VC85 %10s\n", r.VC85.Round(time.Millisecond))
	fmt.Printf("  LVC  %10s\n", r.LVC.Round(time.Millisecond))
	fmt.Printf("  PLT  %10s\n", r.PLT.Round(time.Millisecond))
	if *trace {
		fmt.Println("  visual progress:")
		for _, p := range res.Trace.Points {
			fmt.Printf("    %10s  %5.1f%%\n", p.T.Round(time.Millisecond), p.VC*100)
		}
	}
}
