// Command pageload loads a single site from the corpus under one network
// and protocol configuration and prints the visual metrics and transport
// counters — the smallest way to poke at the testbed, through the public
// qoe SDK.
//
// Usage:
//
//	pageload [-site wikipedia.org] [-net DSL] [-proto QUIC] [-seed N] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/pkg/qoe"
)

func main() {
	siteName := flag.String("site", "wikipedia.org", "site from the 36-site corpus")
	netName := flag.String("net", "DSL", "network: DSL, LTE, DA2GC, MSS, or a scenario-library name")
	protoName := flag.String("proto", "QUIC", "protocol: TCP, TCP+, TCP+BBR, QUIC, QUIC+BBR, QUIC-0RTT")
	seed := flag.Int64("seed", 1, "random seed")
	trace := flag.Bool("trace", false, "print the visual-progress trace")
	list := flag.Bool("list", false, "list corpus sites and exit")
	flag.Parse()

	if *list {
		for _, s := range qoe.Sites() {
			fmt.Printf("%-20s %4d objects %8.1f KB %3d hosts\n",
				s.Name, s.Objects, float64(s.Bytes)/1024, s.Hosts)
		}
		return
	}

	res, err := qoe.LoadPage(qoe.PageLoad{
		Site:     *siteName,
		Network:  *netName,
		Protocol: *protoName,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pageload:", err)
		os.Exit(2)
	}

	fmt.Printf("%s over %s via %s (seed %d)\n", res.Site, res.Network, res.Protocol, *seed)
	fmt.Printf("  objects %d/%d  conns %d  retransmissions %d  rtos %d  complete %v\n",
		res.Objects, res.ObjectsTotal, res.Conns, res.Retransmissions, res.RTOs, res.Complete)
	fmt.Printf("  FVC  %10s\n", res.FVC.Round(time.Millisecond))
	fmt.Printf("  SI   %10s\n", res.SI.Round(time.Millisecond))
	fmt.Printf("  VC85 %10s\n", res.VC85.Round(time.Millisecond))
	fmt.Printf("  LVC  %10s\n", res.LVC.Round(time.Millisecond))
	fmt.Printf("  PLT  %10s\n", res.PLT.Round(time.Millisecond))
	if *trace {
		fmt.Println("  visual progress:")
		for _, p := range res.Trace {
			fmt.Printf("    %10s  %5.1f%%\n", p.T.Round(time.Millisecond), p.VC*100)
		}
	}
}
