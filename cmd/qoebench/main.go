// Command qoebench regenerates every table and figure of the paper's
// evaluation from the simulated testbed and user studies.
//
// Usage:
//
//	qoebench [-scale quick|standard|paper] [-seed N] [-format text|csv|json]
//	         [-parallel N] <experiment> [experiment ...]
//	qoebench -list
//
// Experiments are discovered from the registry in internal/experiments
// (qoebench -list prints them); the pseudo-name "all" selects every one.
// All selected experiments run through internal/runner against one shared
// testbed: the recording plans they declare are merged into a single prewarm
// pass so each (site × network × protocol) condition is simulated exactly
// once for the whole batch, and -parallel bounds how many experiments run
// concurrently. Each experiment's seed is derived deterministically from
// -seed and its name, so output is reproducible and independent of both
// -parallel and which other experiments run alongside.
//
// The pop-* experiments (pop-ab, pop-rating, pop-sweep) run the paper's
// study designs over a population-scale synthetic crowd on the scenario
// library — over a million streamed votes per run at any -scale, with
// memory bounded by the stimulus grid (see internal/population).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"repro/internal/core"
	"repro/internal/runner"

	"repro/internal/experiments"
)

func main() {
	scale := flag.String("scale", "quick", "testbed scale: quick (5 lab sites x5 reps), standard (36 sites x7), paper (36 x31)")
	seed := flag.Int64("seed", 1, "master random seed (per-experiment seeds are derived from it)")
	format := flag.String("format", "text", "output format for every experiment: text, csv or json")
	parallel := flag.Int("parallel", 0, "max experiments running concurrently (0 = GOMAXPROCS, 1 = sequential)")
	list := flag.Bool("list", false, "list registered experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file` (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to `file`")
	benchTrace := flag.String("bench-trace", "", "write a runtime execution trace of the run to `file` (go tool trace)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qoebench [-scale quick|standard|paper] [-seed N] [-format text|csv|json] [-parallel N] <experiment> [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "       qoebench -list\n")
		fmt.Fprintf(os.Stderr, "experiments: %v all\n", experiments.Names())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			e, _ := experiments.Lookup(name)
			nets, prots := e.Conditions()
			if len(nets) == 0 && len(prots) == 0 {
				fmt.Printf("%-14s (no recordings)\n", name)
				continue
			}
			fmt.Printf("%-14s records %d networks x %d protocols\n", name, len(nets), len(prots))
		}
		return
	}
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var sc core.Scale
	switch *scale {
	case "quick":
		sc = core.QuickScale()
	case "standard":
		sc = core.StandardScale()
	case "paper":
		sc = core.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	switch runner.Format(*format) {
	case runner.Text, runner.CSV, runner.JSON:
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	exps, err := experiments.Select(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoebench: %v\n", err)
		os.Exit(2)
	}

	rep := runProfiled(exps, runner.Options{
		Scale:    sc,
		Seed:     *seed,
		Parallel: *parallel,
		Format:   runner.Format(*format),
	}, *cpuprofile, *memprofile, *benchTrace)

	if err := rep.WriteOutputs(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "qoebench: %v\n", err)
		os.Exit(1)
	}
	// Stdout carries only the experiment artifacts, which are byte-identical
	// for any -parallel setting; the accounting line includes wall-clock
	// timings, so it goes to stderr.
	fmt.Fprintln(os.Stderr, rep.Summary())
}

// runProfiled brackets the measured run (prewarm + experiments) with the
// requested profiling hooks, so perf regressions can be diagnosed without
// editing code. Stops are deferred: if an experiment panics, the CPU profile
// and trace are still finalized and readable — exactly the runs a profile is
// most wanted for.
func runProfiled(exps []experiments.Experiment, opts runner.Options, cpuPath, memPath, tracePath string) runner.Report {
	stop := startProfiling(cpuPath, tracePath)
	defer stop()
	defer writeMemProfile(memPath)
	return runner.Run(exps, opts)
}

// startProfiling begins CPU profiling and/or execution tracing and returns a
// function that stops whatever was started.
func startProfiling(cpuPath, tracePath string) (stop func()) {
	var stops []func()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoebench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "qoebench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoebench: -bench-trace: %v\n", err)
			os.Exit(2)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "qoebench: -bench-trace: %v\n", err)
			os.Exit(2)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// writeMemProfile records the post-run live heap (after a GC, so pooled
// steady-state memory — not transient garbage — is what shows up).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoebench: -memprofile: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "qoebench: -memprofile: %v\n", err)
		os.Exit(2)
	}
}
