// Command qoebench regenerates every table and figure of the paper's
// evaluation from the simulated testbed and user studies.
//
// Usage:
//
//	qoebench [-scale quick|standard|paper] [-seed N] [-format text|csv|json]
//	         [-parallel N] <experiment> [experiment ...]
//	qoebench -list
//
// Experiments are discovered from the registry in internal/experiments
// (qoebench -list prints them); the pseudo-name "all" selects every one.
// All selected experiments run through internal/runner against one shared
// testbed: the recording plans they declare are merged into a single prewarm
// pass so each (site × network × protocol) condition is simulated exactly
// once for the whole batch, and -parallel bounds how many experiments run
// concurrently. Each experiment's seed is derived deterministically from
// -seed and its name, so output is reproducible and independent of both
// -parallel and which other experiments run alongside.
//
// The pop-* experiments (pop-ab, pop-rating, pop-sweep) run the paper's
// study designs over a population-scale synthetic crowd on the scenario
// library — over a million streamed votes per run at any -scale, with
// memory bounded by the stimulus grid (see internal/population).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/runner"

	"repro/internal/experiments"
)

func main() {
	scale := flag.String("scale", "quick", "testbed scale: quick (5 lab sites x5 reps), standard (36 sites x7), paper (36 x31)")
	seed := flag.Int64("seed", 1, "master random seed (per-experiment seeds are derived from it)")
	format := flag.String("format", "text", "output format for every experiment: text, csv or json")
	parallel := flag.Int("parallel", 0, "max experiments running concurrently (0 = GOMAXPROCS, 1 = sequential)")
	list := flag.Bool("list", false, "list registered experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qoebench [-scale quick|standard|paper] [-seed N] [-format text|csv|json] [-parallel N] <experiment> [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "       qoebench -list\n")
		fmt.Fprintf(os.Stderr, "experiments: %v all\n", experiments.Names())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			e, _ := experiments.Lookup(name)
			nets, prots := e.Conditions()
			if len(nets) == 0 && len(prots) == 0 {
				fmt.Printf("%-14s (no recordings)\n", name)
				continue
			}
			fmt.Printf("%-14s records %d networks x %d protocols\n", name, len(nets), len(prots))
		}
		return
	}
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var sc core.Scale
	switch *scale {
	case "quick":
		sc = core.QuickScale()
	case "standard":
		sc = core.StandardScale()
	case "paper":
		sc = core.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	switch runner.Format(*format) {
	case runner.Text, runner.CSV, runner.JSON:
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	exps, err := experiments.Select(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoebench: %v\n", err)
		os.Exit(2)
	}

	rep := runner.Run(exps, runner.Options{
		Scale:    sc,
		Seed:     *seed,
		Parallel: *parallel,
		Format:   runner.Format(*format),
	})
	if err := rep.WriteOutputs(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "qoebench: %v\n", err)
		os.Exit(1)
	}
	// Stdout carries only the experiment artifacts, which are byte-identical
	// for any -parallel setting; the accounting line includes wall-clock
	// timings, so it goes to stderr.
	fmt.Fprintln(os.Stderr, rep.Summary())
}
