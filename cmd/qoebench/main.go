// Command qoebench regenerates every table and figure of the paper's
// evaluation from the simulated testbed and user studies.
//
// Usage:
//
//	qoebench [-scale quick|standard|paper] [-seed N] [-format text|csv|json]
//	         [-parallel N] [-stream] [-timeout DUR] <experiment> [experiment ...]
//	qoebench -list
//
// Experiments are discovered from the public SDK's registry catalog
// (qoebench -list prints them); the pseudo-name "all" selects every one.
// All selected experiments run through one qoe.Session against one shared
// testbed: the recording plans they declare are merged into a single prewarm
// pass so each (site × network × protocol) condition is simulated exactly
// once for the whole batch, and -parallel bounds how many experiments run
// concurrently. Each experiment's seed is derived deterministically from
// -seed and its name, so document output is reproducible and independent of
// both -parallel and which other experiments run alongside.
//
// -stream replaces the whole-document renderings with the SDK's versioned
// NDJSON event stream (schema_version 1): one JSON object per line of type
// "row", "progress", or "summary" — the wire format downstream services
// consume incrementally instead of parsing finished tables. Row and summary
// lines are deterministic like the documents; progress lines report
// completion order, so pin -parallel 1 when diffing whole streams.
//
// The run honors interruption: Ctrl-C — or an elapsed -timeout — cancels the
// session context, which stops the prewarm between conditions, skips
// unstarted experiments, and winds population shard loops down promptly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"repro/pkg/qoe"
)

func main() {
	scale := flag.String("scale", "quick", "testbed scale: quick (5 lab sites x5 reps), standard (36 sites x7), paper (36 x31)")
	seed := flag.Int64("seed", 1, "master random seed (per-experiment seeds are derived from it)")
	format := flag.String("format", "text", "output format for every experiment: text, csv or json")
	parallel := flag.Int("parallel", 0, "max experiments running concurrently (0 = all cores, 1 = sequential)")
	stream := flag.Bool("stream", false, "emit the schema_version 1 NDJSON event stream instead of -format documents")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none); uses the same cancellation path as Ctrl-C")
	list := flag.Bool("list", false, "list registered experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file` (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to `file`")
	benchTrace := flag.String("bench-trace", "", "write a runtime execution trace of the run to `file` (go tool trace)")
	// The adaptive-* flags override the canonical sequential-stopping policy
	// of adaptive experiments (pop-sweep-adaptive). The policy shapes the
	// result bytes, so any override leaves the golden/cacheable tuple space —
	// use them for exploration, not for pinned artifacts.
	adaptiveAlpha := flag.Float64("adaptive-alpha", 0, "adaptive studies: error budget of the always-valid confidence sequence (0 = canonical)")
	adaptiveThreshold := flag.Float64("adaptive-threshold", 0, "adaptive studies: noticeability share the stopping rule decides against (0 = canonical)")
	adaptiveMinShards := flag.Int("adaptive-min-shards", 0, "adaptive studies: shards every cell runs before its first look (0 = canonical)")
	adaptiveRoundShards := flag.Int("adaptive-round-shards", 0, "adaptive studies: shards granted per allocation round (0 = canonical)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qoebench [-scale quick|standard|paper] [-seed N] [-format text|csv|json] [-parallel N] [-stream] [-timeout DUR] <experiment> [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "       qoebench -list\n")
		fmt.Fprintf(os.Stderr, "experiments: %v all\n", qoe.ExperimentNames())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, info := range qoe.Experiments() {
			if info.Networks == 0 && info.Protocols == 0 {
				fmt.Printf("%-14s (no recordings)\n", info.Name)
				continue
			}
			fmt.Printf("%-14s records %d networks x %d protocols\n", info.Name, info.Networks, info.Protocols)
		}
		return
	}
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	sc, err := qoe.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	var sink qoe.Sink
	switch *format {
	case "text":
		sink = qoe.TextSink(os.Stdout)
	case "csv":
		sink = qoe.CSVSink(os.Stdout)
	case "json":
		sink = qoe.JSONSink(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
	if *stream {
		// -stream replaces the document renderings wholesale; an explicit
		// -format alongside it is a contradiction, not an override.
		formatSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "format" {
				formatSet = true
			}
		})
		if formatSet {
			fmt.Fprintln(os.Stderr, "qoebench: -stream and -format are mutually exclusive")
			os.Exit(2)
		}
		sink = qoe.StreamSink(os.Stdout)
	}

	opts := []qoe.Option{
		qoe.WithScale(sc),
		qoe.WithSeed(*seed),
		qoe.WithParallelism(*parallel),
		qoe.WithScenarios(flag.Args()...),
	}
	if *adaptiveAlpha != 0 || *adaptiveThreshold != 0 || *adaptiveMinShards != 0 || *adaptiveRoundShards != 0 {
		opts = append(opts, qoe.WithAdaptive(qoe.AdaptiveConfig{
			Alpha:       *adaptiveAlpha,
			Threshold:   *adaptiveThreshold,
			MinShards:   *adaptiveMinShards,
			RoundShards: *adaptiveRoundShards,
		}))
	}
	sess, err := qoe.NewSession(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoebench: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		// -timeout rides the same context the Ctrl-C handler cancels, so a
		// deadline stops the run exactly like an interrupt: prewarm halts
		// between conditions, unstarted experiments are skipped, and
		// population shard loops wind down promptly.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	summary, err := runProfiled(ctx, sess, sink, *cpuprofile, *memprofile, *benchTrace)
	if err != nil {
		if *timeout > 0 && errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "qoebench: run exceeded -timeout %v\n", *timeout)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "qoebench: %v\n", err)
		os.Exit(1)
	}
	// Stdout carries only the experiment artifacts. For the document formats
	// they are byte-identical at any -parallel setting; for -stream the row
	// and summary lines are too, while progress lines interleave in
	// completion order (use -parallel 1 to pin the whole stream). The
	// accounting line includes wall-clock timings, so it goes to stderr.
	fmt.Fprintln(os.Stderr, summary)
}

// runProfiled brackets the measured run (prewarm + experiments) with the
// requested profiling hooks, so perf regressions can be diagnosed without
// editing code. Stops are deferred: if an experiment panics, the CPU profile
// and trace are still finalized and readable — exactly the runs a profile is
// most wanted for.
func runProfiled(ctx context.Context, sess *qoe.Session, sink qoe.Sink, cpuPath, memPath, tracePath string) (qoe.Summary, error) {
	stop := startProfiling(cpuPath, tracePath)
	defer stop()
	defer writeMemProfile(memPath)
	return sess.Run(ctx, sink)
}

// startProfiling begins CPU profiling and/or execution tracing and returns a
// function that stops whatever was started.
func startProfiling(cpuPath, tracePath string) (stop func()) {
	var stops []func()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoebench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "qoebench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoebench: -bench-trace: %v\n", err)
			os.Exit(2)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "qoebench: -bench-trace: %v\n", err)
			os.Exit(2)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// writeMemProfile records the post-run live heap (after a GC, so pooled
// steady-state memory — not transient garbage — is what shows up).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoebench: -memprofile: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "qoebench: -memprofile: %v\n", err)
		os.Exit(2)
	}
}
