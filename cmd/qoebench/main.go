// Command qoebench regenerates every table and figure of the paper's
// evaluation from the simulated testbed and user studies.
//
// Usage:
//
//	qoebench [-scale quick|standard|paper] [-seed N] <experiment>
//
// Experiments: table1 table2 table3 fig3 fig4 fig5 fig6
// ablate-iw ablate-pacing ablate-hol ext-0rtt all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/export"
)

func main() {
	scale := flag.String("scale", "quick", "testbed scale: quick (5 lab sites x5 reps), standard (36 sites x7), paper (36 x31)")
	seed := flag.Int64("seed", 1, "master random seed")
	format := flag.String("format", "text", "output format for table3/fig4/fig5/fig6: text, csv or json")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qoebench [-scale quick|standard|paper] [-seed N] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 table3 fig3 fig4 fig5 fig6 ablate-iw ablate-pacing ablate-hol ext-0rtt all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var sc core.Scale
	switch *scale {
	case "quick":
		sc = core.QuickScale()
	case "standard":
		sc = core.StandardScale()
	case "paper":
		sc = core.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	opts := experiments.Options{Scale: sc, Seed: *seed}

	run := func(name string) error {
		start := time.Now()
		defer func() {
			fmt.Printf("\n[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}()
		switch name {
		case "table1":
			experiments.Table1(os.Stdout)
		case "table2":
			experiments.Table2(os.Stdout)
		case "table3":
			res := experiments.Table3(*seed)
			switch *format {
			case "csv":
				return export.Table3CSV(os.Stdout, res)
			case "json":
				return export.WriteJSON(os.Stdout, res)
			}
			res.Render(os.Stdout)
		case "fig3":
			res, err := experiments.Fig3(opts)
			if err != nil {
				return err
			}
			if *format == "json" {
				return export.WriteJSON(os.Stdout, res)
			}
			res.Render(os.Stdout)
		case "fig4":
			res, err := experiments.Fig4(opts)
			if err != nil {
				return err
			}
			switch *format {
			case "csv":
				return export.Fig4CSV(os.Stdout, res)
			case "json":
				return export.WriteJSON(os.Stdout, res.Shares)
			}
			res.Render(os.Stdout)
		case "fig5":
			res, err := experiments.Fig5(opts)
			if err != nil {
				return err
			}
			switch *format {
			case "csv":
				return export.Fig5CSV(os.Stdout, res)
			case "json":
				return export.WriteJSON(os.Stdout, res.Cells)
			}
			res.Render(os.Stdout)
		case "fig6":
			res, err := experiments.Fig6(opts)
			if err != nil {
				return err
			}
			switch *format {
			case "csv":
				return export.Fig6CSV(os.Stdout, res)
			case "json":
				return export.WriteJSON(os.Stdout, res.Cells)
			}
			res.Render(os.Stdout)
		case "ablate-iw":
			experiments.RenderAblation(os.Stdout, "Ablation A1: initial window IW32 vs IW10 (stock TCP base)", experiments.AblationIW(opts))
		case "ablate-pacing":
			experiments.RenderAblation(os.Stdout, "Ablation A2: pacing on vs off (TCP+ base)", experiments.AblationPacing(opts))
		case "ablate-hol":
			experiments.RenderAblation(os.Stdout, "Ablation A3: per-stream (QUIC) vs byte-stream (TCP+) delivery", experiments.AblationHOL(opts))
		case "ext-0rtt":
			experiments.RenderAblation(os.Stdout, "Extension E1: QUIC 0-RTT repeat visit vs 1-RTT", experiments.Ext0RTT(opts))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	target := flag.Arg(0)
	names := []string{target}
	if target == "all" {
		names = []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6",
			"ablate-iw", "ablate-pacing", "ablate-hol", "ext-0rtt"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "qoebench: %v\n", err)
			os.Exit(1)
		}
	}
}
