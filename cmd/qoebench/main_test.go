package main

// End-to-end flag tests for the qoebench binary. These build the real
// binary and exercise the -timeout cancellation path — the same context
// plumbing the Ctrl-C handler and the qoed drain use.

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildQoebench compiles the binary once per test run.
func buildQoebench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qoebench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	return bin
}

// TestTimeoutFlagAbortsRun: an immediately-elapsing -timeout aborts the run
// with exit status 1 and the deadline message, instead of hanging or
// reporting success.
func TestTimeoutFlagAbortsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildQoebench(t)
	// 1ns has elapsed before the session even starts; "all" would otherwise
	// run the full suite for many seconds.
	cmd := exec.Command(bin, "-timeout", "1ns", "all")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 1 {
		t.Fatalf("expected exit 1, got %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "exceeded -timeout") {
		t.Fatalf("stderr missing timeout message:\n%s", stderr.String())
	}
}

// TestTimeoutFlagGenerousDeadlinePasses: a deadline the run comfortably
// beats must not perturb the output — stdout stays byte-identical to an
// un-timed run.
func TestTimeoutFlagGenerousDeadlinePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildQoebench(t)
	run := func(args ...string) []byte {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v failed: %v\nstderr: %s", args, err, stderr.String())
		}
		return stdout.Bytes()
	}
	timed := run("-timeout", "10m", "-seed", "1", "table1")
	plain := run("-seed", "1", "table1")
	if !bytes.Equal(timed, plain) {
		t.Fatal("-timeout perturbed the run output")
	}
}
