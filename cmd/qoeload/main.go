// Command qoeload is the load-proof harness for the serving stack: it
// replays hundreds of concurrent qoe.Client connections against an
// in-process qoed daemon with a mixed request blend — cold tuples that must
// simulate, warm tuples that replay from the result cache, and duplicate
// bursts that collapse onto one run via singleflight — and reports latency
// percentiles, row throughput, and heap allocations for the whole
// client+server round trip. It exits nonzero when a configured SLO is
// violated, which is what lets CI gate the zero-alloc population loop and
// append-based stream encoding with an end-to-end measurement instead of
// microbenchmarks alone.
//
// Usage:
//
//	qoeload [-conns N] [-requests N] [-blend COLD:CACHED:DEDUP[:DISK]]
//	        [-experiments LIST] [-scale quick|paper] [-warm N]
//	        [-dedup-group N] [-seed N] [-workers N] [-queue N] [-store DIR]
//	        [-max-p50 DUR] [-max-p99 DUR] [-max-disk-p99 DUR]
//	        [-min-rows-per-sec F] [-max-error-rate F] [-timeout DUR] [-json]
//
// The blend is scheduled deterministically from -seed: request classes are
// interleaved by an exact-proportion shuffle, cold requests draw
// never-repeated seeds, cached requests draw from a pre-warmed pool, and
// dedup requests arrive in groups sharing one fresh tuple so concurrent
// arrivals exercise the server's singleflight path. Because every tuple is a
// pure function of its spec, the harness also cross-checks correctness under
// load: every response's summary must match the first response seen for the
// same tuple, so a race that corrupted a stream would fail the run even if
// it met the latency SLOs.
//
// A nonzero DISK weight turns on restart-the-store mode: a first daemon
// life computes the disk class's tuples into a spill store (-store, or a
// private temp dir) and shuts down, and the measured daemon boots on that
// directory with a cold RAM tier — so every disk request replays a
// checksummed spill entry from the durable tier under live mixed load, the
// path a restarted (or memory-pressured) node serves while it re-warms.
// -max-disk-p99 gates that class's p99, and the cross-restart summary check
// extends the determinism guard over the store's replay path.
//
// Exit status: 0 when all SLOs hold, 1 on an SLO violation or any failed
// request beyond -max-error-rate, 2 on setup/usage errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/qoe"
	"repro/pkg/qoe/qoed"
)

// reqClass labels the three admission paths a request is scheduled to hit.
// The server decides the actual outcome (a dedup-group straggler lands on
// the cache once its run finishes); the class records intent, the server's
// /metrics counters record what happened.
type reqClass int

const (
	classCold reqClass = iota
	classCached
	classDedup
	classDisk
	numClasses
)

func (c reqClass) String() string {
	switch c {
	case classCold:
		return "cold"
	case classCached:
		return "cached"
	case classDedup:
		return "dedup"
	case classDisk:
		return "disk"
	}
	return "?"
}

// request is one scheduled load unit: a class and the seed that, with the
// shared experiment selection and scale, names its canonical tuple.
type request struct {
	class reqClass
	seed  int64
}

// sample is one completed request's measurement.
type sample struct {
	class   reqClass
	latency time.Duration
	rows    int
	retries int
	err     error
}

// countSink counts rows without retaining them: the cheapest possible
// consumer, so the measurement is the serving+decode path, not the harness.
type countSink struct{ rows int }

func (s *countSink) Row(qoe.RowEvent) error           { s.rows++; return nil }
func (s *countSink) Progress(qoe.ProgressEvent) error { return nil }
func (s *countSink) Summary(qoe.SummaryEvent) error   { return nil }

// tupleCheck is the determinism cross-check: the first summary observed for
// a seed becomes its expectation, and every later response for the same seed
// must match it exactly.
type tupleCheck struct {
	mu   sync.Mutex
	seen map[int64]qoe.SummaryEvent
}

func (tc *tupleCheck) verify(seed int64, got qoe.SummaryEvent) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	want, ok := tc.seen[seed]
	if !ok {
		tc.seen[seed] = got
		return nil
	}
	if want != got {
		return fmt.Errorf("summary mismatch for seed %d: got %+v, want %+v", seed, got, want)
	}
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	conns := flag.Int("conns", 200, "concurrent client connections")
	requests := flag.Int("requests", 600, "total measured requests across all connections")
	blend := flag.String("blend", "1:6:3", "cold:cached:dedup request mix (integer weights)")
	experiments := flag.String("experiments", "table1", "comma-separated experiment selection for every tuple")
	scale := flag.String("scale", "quick", "testbed scale for every tuple")
	warm := flag.Int("warm", 4, "distinct tuples pre-run into the result cache for the cached class")
	dedupGroup := flag.Int("dedup-group", 8, "requests sharing one fresh tuple per dedup burst")
	seed := flag.Int64("seed", 1, "schedule-shuffle seed (tuple seeds derive from it deterministically)")
	workers := flag.Int("workers", 0, "server simulation workers (0 = one per core)")
	queue := flag.Int("queue", 64, "server admission queue depth")
	storeDir := flag.String("store", "", "spill store directory for the disk class (default: a private temp dir)")
	maxP50 := flag.Duration("max-p50", 0, "SLO: overall p50 latency ceiling (0 disables)")
	maxP99 := flag.Duration("max-p99", 0, "SLO: overall p99 latency ceiling (0 disables)")
	maxDiskP99 := flag.Duration("max-disk-p99", 0, "SLO: disk-class (warm-restart) p99 latency ceiling (0 disables)")
	minRows := flag.Float64("min-rows-per-sec", 0, "SLO: decoded-row throughput floor (0 disables)")
	maxErrRate := flag.Float64("max-error-rate", 0, "SLO: tolerated fraction of failed requests")
	timeout := flag.Duration("timeout", 5*time.Minute, "hard deadline for the whole harness")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qoeload [-conns N] [-requests N] [-blend C:H:D[:K]] [-max-p99 DUR] ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return 2
	}
	weights, err := parseBlend(*blend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoeload: %v\n", err)
		return 2
	}
	if *conns < 1 || *requests < 1 || *warm < 1 || *dedupGroup < 1 {
		fmt.Fprintln(os.Stderr, "qoeload: -conns, -requests, -warm, and -dedup-group must be >= 1")
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	sel := strings.Split(*experiments, ",")
	newReq := func(tupleSeed int64) qoe.RunRequest {
		return qoe.RunRequest{Experiments: sel, Scale: qoe.Scale(*scale), Seed: tupleSeed}
	}
	check := &tupleCheck{seen: make(map[int64]qoe.SummaryEvent)}

	// The schedule is fixed before any daemon boots: the disk class's tuple
	// set must be known up front so the pre-restart phase can compute it.
	schedule := buildSchedule(*requests, weights, *warm, *dedupGroup, rand.New(rand.NewSource(*seed)))
	diskSeeds := map[int64]bool{}
	for _, r := range schedule {
		if r.class == classDisk {
			diskSeeds[r.seed] = true
		}
	}

	cfg := qoed.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Logf:       func(string, ...any) {},
	}
	if len(diskSeeds) > 0 {
		// Restart-the-store-between-phases mode: a first daemon life computes
		// the disk class's tuples into a spill store and shuts down; the
		// measured daemon boots on the same directory with a cold RAM tier,
		// so each disk request pays the durable tier's read + verify +
		// promote — the restart-recovery path under live mixed load.
		cfg.StoreDir = *storeDir
		if cfg.StoreDir == "" {
			dir, err := os.MkdirTemp("", "qoeload-store-*")
			if err != nil {
				fmt.Fprintf(os.Stderr, "qoeload: store dir: %v\n", err)
				return 2
			}
			defer os.RemoveAll(dir)
			cfg.StoreDir = dir
		}
		if code := prewarmDiskStore(ctx, cfg, diskSeeds, newReq, check); code != 0 {
			return code
		}
	}

	// In-process daemon on a loopback listener: the harness measures the
	// full HTTP round trip, but its allocation accounting spans both ends
	// because client and server share this process's heap.
	srv, err := qoed.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoeload: %v\n", err)
		return 2
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoeload: listen: %v\n", err)
		return 2
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	baseURL := "http://" + ln.Addr().String()

	// One shared transport sized for the connection count, so the hundreds
	// of logical clients don't serialize on the default two idle conns.
	transport := &http.Transport{
		MaxIdleConns:        2 * *conns,
		MaxIdleConnsPerHost: 2 * *conns,
	}
	defer transport.CloseIdleConnections()
	httpc := &http.Client{Transport: transport}

	// Warm phase (untimed): prime the result cache with the cached class's
	// seed pool, and fail fast if the tuple itself is invalid.
	warmClient := qoe.NewClient(baseURL, httpc)
	for i := 0; i < *warm; i++ {
		s := cachedSeedBase + int64(i)
		summary, err := warmClient.Run(ctx, newReq(s), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoeload: warm run (seed %d): %v\n", s, err)
			return 2
		}
		if err := check.verify(s, summary); err != nil {
			fmt.Fprintf(os.Stderr, "qoeload: warm run: %v\n", err)
			return 2
		}
	}

	// Measured phase.
	var sheds atomic.Int64
	samples := make([]sample, len(schedule))
	work := make(chan int)
	var wg sync.WaitGroup
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := qoe.NewClient(baseURL, httpc)
			var sink countSink
			for idx := range work {
				req := schedule[idx]
				samples[idx] = oneRequest(ctx, client, newReq(req.seed), req, &sink, check, &sheds)
			}
		}()
	}
	for idx := range schedule {
		work <- idx
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	rep := buildReport(samples, wall, before, after, sheds.Load())
	rep.Conns = *conns
	rep.Blend = *blend
	rep.Experiments = *experiments
	rep.Scale = *scale
	rep.ServerMetrics, rep.ServerLatency = scrapeMetrics(ctx, httpc, baseURL)

	rep.evalSLOs(*maxP50, *maxP99, *maxDiskP99, *minRows, *maxErrRate)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		rep.render(os.Stdout)
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

// Seed spaces for the three classes. Keeping them disjoint guarantees a
// "cold" tuple is genuinely cold: it can never collide with the warmed pool
// or a dedup burst.
const (
	cachedSeedBase = 1
	coldSeedBase   = 1_000_000
	dedupSeedBase  = 2_000_000
	diskSeedBase   = 3_000_000
)

// prewarmDiskStore is the first daemon life of restart-the-store mode: it
// computes every disk-class tuple through a daemon writing through to
// cfg.StoreDir, waits for the spill writes to land, and shuts the daemon
// down — leaving a warm durable tier and a cold everything-else for the
// measured life to recover from. Summaries are recorded into check, so the
// measured phase also verifies determinism ACROSS the restart.
func prewarmDiskStore(ctx context.Context, cfg qoed.Config, diskSeeds map[int64]bool, newReq func(int64) qoe.RunRequest, check *tupleCheck) int {
	srv, err := qoed.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoeload: pre-restart store: %v\n", err)
		return 2
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoeload: listen: %v\n", err)
		return 2
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	client := qoe.NewClient("http://"+ln.Addr().String(), nil)
	for s := range diskSeeds {
		summary, err := client.Run(ctx, newReq(s), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoeload: disk pre-run (seed %d): %v\n", s, err)
			return 2
		}
		if err := check.verify(s, summary); err != nil {
			fmt.Fprintf(os.Stderr, "qoeload: disk pre-run: %v\n", err)
			return 2
		}
	}
	// A run's stream returns just before its spill write lands; every tuple
	// must be durable before this life ends.
	for deadline := time.Now().Add(30 * time.Second); ; {
		m, err := client.Metrics(ctx)
		if err == nil && m.StoreEntries >= int64(len(diskSeeds)) {
			return 0
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "qoeload: disk pre-runs never reached the store\n")
			return 2
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// parseBlend parses "cold:cached:dedup[:disk]" integer weights. The legacy
// three-part form is accepted with a disk weight of zero, so existing
// invocations keep their exact schedule.
func parseBlend(s string) ([numClasses]int, error) {
	var w [numClasses]int
	parts := strings.Split(s, ":")
	if len(parts) != int(numClasses) && len(parts) != int(numClasses)-1 {
		return w, fmt.Errorf("bad -blend %q: want COLD:CACHED:DEDUP[:DISK]", s)
	}
	sum := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return w, fmt.Errorf("bad -blend weight %q", p)
		}
		w[i] = n
		sum += n
	}
	if sum == 0 {
		return w, fmt.Errorf("bad -blend %q: all weights zero", s)
	}
	return w, nil
}

// buildSchedule lays out the measured requests: exact-proportion class
// counts (largest-remainder rounding), deterministic seeds per class, one
// shuffle so the classes interleave the way mixed production traffic would.
func buildSchedule(n int, weights [numClasses]int, warm, dedupGroup int, rng *rand.Rand) []request {
	sum := 0
	for _, w := range weights {
		sum += w
	}
	counts := [numClasses]int{}
	assigned := 0
	for c := range counts {
		counts[c] = n * weights[c] / sum
		assigned += counts[c]
	}
	for c := 0; assigned < n; c = (c + 1) % int(numClasses) {
		if weights[c] > 0 {
			counts[c]++
			assigned++
		}
	}
	schedule := make([]request, 0, n)
	var coldNext, dedupNext int64
	for i := 0; i < counts[classCold]; i++ {
		schedule = append(schedule, request{classCold, coldSeedBase + coldNext})
		coldNext++
	}
	for i := 0; i < counts[classCached]; i++ {
		schedule = append(schedule, request{classCached, cachedSeedBase + int64(rng.Intn(warm))})
	}
	for i := 0; i < counts[classDedup]; i++ {
		schedule = append(schedule, request{classDedup, dedupSeedBase + dedupNext/int64(dedupGroup)})
		dedupNext++
	}
	// Disk requests get distinct sequential seeds: each tuple is computed in
	// the pre-restart phase and then evicted from RAM by the restart, so every
	// measured disk request pays exactly one durable-tier read + promote.
	for i := 0; i < counts[classDisk]; i++ {
		schedule = append(schedule, request{classDisk, diskSeedBase + int64(i)})
	}
	rng.Shuffle(len(schedule), func(i, j int) { schedule[i], schedule[j] = schedule[j], schedule[i] })
	return schedule
}

// oneRequest executes one scheduled request, retrying 429/503 shed
// responses with a short capped backoff (each shed is counted; only final
// failures count against the error-rate SLO). Latency spans first attempt
// to fully decoded stream — retries are the client-visible cost of load
// shedding, so they stay inside the measurement.
func oneRequest(ctx context.Context, client *qoe.Client, rr qoe.RunRequest, req request, sink *countSink, check *tupleCheck, sheds *atomic.Int64) sample {
	const maxAttempts = 50
	t0 := time.Now()
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		sink.rows = 0
		summary, err := client.Run(ctx, rr, sink)
		if err == nil {
			err = check.verify(rr.Seed, summary)
			return sample{class: req.class, latency: time.Since(t0), rows: sink.rows, retries: attempt, err: err}
		}
		var retryable *qoe.RetryableError
		if !errors.As(err, &retryable) || ctx.Err() != nil {
			return sample{class: req.class, latency: time.Since(t0), retries: attempt, err: err}
		}
		sheds.Add(1)
		backoff := retryable.RetryAfter
		if backoff > 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		}
		lastErr = err
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return sample{class: req.class, latency: time.Since(t0), retries: attempt, err: ctx.Err()}
		}
	}
	return sample{class: req.class, latency: time.Since(t0), retries: maxAttempts, err: fmt.Errorf("gave up after %d shed retries: %w", maxAttempts, lastErr)}
}

// classStats summarizes one request class.
type classStats struct {
	Requests int           `json:"requests"`
	Errors   int           `json:"errors"`
	P50      time.Duration `json:"p50_ns"`
	P99      time.Duration `json:"p99_ns"`
	Max      time.Duration `json:"max_ns"`
}

// report is the harness result, both the JSON document (-json) and the
// source for the text rendering.
type report struct {
	Conns         int                   `json:"conns"`
	Blend         string                `json:"blend"`
	Experiments   string                `json:"experiments"`
	Scale         string                `json:"scale"`
	Requests      int                   `json:"requests"`
	Errors        int                   `json:"errors"`
	Sheds         int64                 `json:"sheds_retried"`
	WallSeconds   float64               `json:"wall_seconds"`
	ReqPerSec     float64               `json:"requests_per_sec"`
	RowsPerSec    float64               `json:"rows_per_sec"`
	Rows          int64                 `json:"rows"`
	AllocsPerReq  float64               `json:"allocs_per_request"`
	BytesPerReq   float64               `json:"alloc_bytes_per_request"`
	Overall       classStats            `json:"overall"`
	PerClass      map[string]classStats `json:"per_class"`
	ServerMetrics map[string]int64      `json:"server_metrics,omitempty"`
	// ServerLatency is the daemon's own per-class serving-latency summary
	// (keyed cold/mem/disk/peer/dedup), scraped from /metrics — the
	// server-side complement of the harness-measured PerClass numbers.
	ServerLatency map[string]qoe.LatencyStats `json:"server_latency,omitempty"`
	SLOs          []sloResult                 `json:"slos"`
	Pass          bool                        `json:"pass"`
}

// sloResult is one gate's verdict.
type sloResult struct {
	Name string `json:"name"`
	Want string `json:"want"`
	Got  string `json:"got"`
	OK   bool   `json:"ok"`
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func statsFor(samples []sample, class reqClass, all bool) classStats {
	var lat []time.Duration
	st := classStats{}
	for _, s := range samples {
		if !all && s.class != class {
			continue
		}
		st.Requests++
		if s.err != nil {
			st.Errors++
			continue
		}
		lat = append(lat, s.latency)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	st.P50 = percentile(lat, 0.50)
	st.P99 = percentile(lat, 0.99)
	if n := len(lat); n > 0 {
		st.Max = lat[n-1]
	}
	return st
}

func buildReport(samples []sample, wall time.Duration, before, after runtime.MemStats, sheds int64) *report {
	rep := &report{
		Requests: len(samples),
		Sheds:    sheds,
		PerClass: make(map[string]classStats, numClasses),
	}
	for _, s := range samples {
		if s.err != nil {
			rep.Errors++
		} else {
			rep.Rows += int64(s.rows)
		}
	}
	rep.WallSeconds = wall.Seconds()
	if rep.WallSeconds > 0 {
		rep.ReqPerSec = float64(rep.Requests) / rep.WallSeconds
		rep.RowsPerSec = float64(rep.Rows) / rep.WallSeconds
	}
	if rep.Requests > 0 {
		rep.AllocsPerReq = float64(after.Mallocs-before.Mallocs) / float64(rep.Requests)
		rep.BytesPerReq = float64(after.TotalAlloc-before.TotalAlloc) / float64(rep.Requests)
	}
	rep.Overall = statsFor(samples, 0, true)
	for c := classCold; c < numClasses; c++ {
		rep.PerClass[c.String()] = statsFor(samples, c, false)
	}
	return rep
}

// scrapeMetrics pulls the daemon's counter map so the report shows how the
// blend actually landed (accepted vs deduped vs cache-hit vs rejected),
// plus the server's own per-class latency summaries — the serving-side view
// of the same requests this harness timed end to end. Best-effort: a scrape
// failure drops the section rather than the run. Nested objects (fabric,
// adaptive, build_info) are skipped, not fatal.
func scrapeMetrics(ctx context.Context, httpc *http.Client, baseURL string) (map[string]int64, map[string]qoe.LatencyStats) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, nil
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, nil
	}
	out := make(map[string]int64, len(raw))
	for k, v := range raw {
		var n json.Number
		if err := json.Unmarshal(v, &n); err != nil {
			continue
		}
		if i, err := n.Int64(); err == nil {
			out[k] = i
		}
	}
	var lat map[string]qoe.LatencyStats
	if v, ok := raw["latency"]; ok {
		_ = json.Unmarshal(v, &lat)
	}
	return out, lat
}

// evalSLOs appends one verdict per configured gate plus the always-on
// error-rate gate, and sets Pass to their conjunction.
func (r *report) evalSLOs(maxP50, maxP99, maxDiskP99 time.Duration, minRows, maxErrRate float64) {
	r.Pass = true
	add := func(name, want, got string, ok bool) {
		r.SLOs = append(r.SLOs, sloResult{Name: name, Want: want, Got: got, OK: ok})
		if !ok {
			r.Pass = false
		}
	}
	errRate := 0.0
	if r.Requests > 0 {
		errRate = float64(r.Errors) / float64(r.Requests)
	}
	add("error-rate", fmt.Sprintf("<= %.4f", maxErrRate), fmt.Sprintf("%.4f (%d/%d)", errRate, r.Errors, r.Requests), errRate <= maxErrRate)
	if maxP50 > 0 {
		add("p50-latency", "<= "+maxP50.String(), r.Overall.P50.String(), r.Overall.P50 <= maxP50)
	}
	if maxP99 > 0 {
		add("p99-latency", "<= "+maxP99.String(), r.Overall.P99.String(), r.Overall.P99 <= maxP99)
	}
	if maxDiskP99 > 0 {
		st := r.PerClass[classDisk.String()]
		add("disk-p99", "<= "+maxDiskP99.String(), st.P99.String(), st.P99 <= maxDiskP99)
	}
	if minRows > 0 {
		add("rows-per-sec", fmt.Sprintf(">= %.0f", minRows), fmt.Sprintf("%.0f", r.RowsPerSec), r.RowsPerSec >= minRows)
	}
}

func (r *report) render(w *os.File) {
	fmt.Fprintf(w, "qoeload: %d requests over %d conns (blend %s, experiments=%s, scale=%s)\n",
		r.Requests, r.Conns, r.Blend, r.Experiments, r.Scale)
	fmt.Fprintf(w, "  wall %.2fs   %.1f req/s   %.0f rows/s (%d rows)   %d errors   %d sheds retried\n",
		r.WallSeconds, r.ReqPerSec, r.RowsPerSec, r.Rows, r.Errors, r.Sheds)
	fmt.Fprintf(w, "  heap: %.0f allocs/req, %.0f B/req (client+server, in-process)\n", r.AllocsPerReq, r.BytesPerReq)
	fmt.Fprintf(w, "  %-8s %8s %12s %12s %12s %8s\n", "class", "reqs", "p50", "p99", "max", "errors")
	classes := []string{"overall", classCold.String(), classCached.String(), classDedup.String(), classDisk.String()}
	for _, name := range classes {
		st := r.Overall
		if name != "overall" {
			st = r.PerClass[name]
		}
		if st.Requests == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-8s %8d %12s %12s %12s %8d\n", name, st.Requests, st.P50, st.P99, st.Max, st.Errors)
	}
	if len(r.ServerMetrics) > 0 {
		fmt.Fprintf(w, "  server: accepted=%d deduped=%d cache_hit=%d rejected=%d completed=%d bytes=%d\n",
			r.ServerMetrics["runs_accepted"], r.ServerMetrics["runs_deduped"], r.ServerMetrics["runs_cache_hit"],
			r.ServerMetrics["runs_rejected"], r.ServerMetrics["runs_completed"], r.ServerMetrics["bytes_streamed"])
	}
	if len(r.ServerLatency) > 0 {
		for _, name := range []string{"cold", "mem", "disk", "peer", "dedup"} {
			st, ok := r.ServerLatency[name]
			if !ok || st.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  server-latency %-6s %8d reqs   p50 %.1fms   p99 %.1fms\n",
				name, st.Count, st.P50*1e3, st.P99*1e3)
		}
	}
	for _, s := range r.SLOs {
		verdict := "PASS"
		if !s.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  SLO %-14s want %-12s got %-24s %s\n", s.Name, s.Want, s.Got, verdict)
	}
	if r.Pass {
		fmt.Fprintln(w, "qoeload: all SLOs met")
	} else {
		fmt.Fprintln(w, "qoeload: SLO VIOLATION")
	}
}
