package main

import (
	"math/rand"
	"testing"
	"time"
)

func TestParseBlend(t *testing.T) {
	// Legacy three-part blends parse with a disk weight of zero, so existing
	// invocations keep their exact schedule.
	w, err := parseBlend("1:6:3")
	if err != nil {
		t.Fatal(err)
	}
	if w != [numClasses]int{1, 6, 3, 0} {
		t.Fatalf("parseBlend(1:6:3) = %v", w)
	}
	w, err = parseBlend("1:5:3:1")
	if err != nil {
		t.Fatal(err)
	}
	if w != [numClasses]int{1, 5, 3, 1} {
		t.Fatalf("parseBlend(1:5:3:1) = %v", w)
	}
	for _, bad := range []string{"", "1:2", "1:2:3:4:5", "a:b:c", "-1:2:3", "0:0:0", "0:0:0:0"} {
		if _, err := parseBlend(bad); err == nil {
			t.Errorf("parseBlend(%q): want error", bad)
		}
	}
}

// TestBuildScheduleProportions: exact class counts under largest-remainder
// rounding, disjoint seed spaces, dedup bursts of the configured size, and
// disk requests each naming a distinct durable tuple.
func TestBuildScheduleProportions(t *testing.T) {
	weights := [numClasses]int{1, 5, 3, 1}
	s := buildSchedule(100, weights, 4, 8, rand.New(rand.NewSource(7)))
	if len(s) != 100 {
		t.Fatalf("schedule length %d, want 100", len(s))
	}
	counts := [numClasses]int{}
	groupSize := map[int64]int{}
	diskSeeds := map[int64]bool{}
	for _, r := range s {
		counts[r.class]++
		switch r.class {
		case classCold:
			if r.seed < coldSeedBase || r.seed >= dedupSeedBase {
				t.Fatalf("cold seed %d outside its space", r.seed)
			}
		case classCached:
			if r.seed < cachedSeedBase || r.seed >= cachedSeedBase+4 {
				t.Fatalf("cached seed %d outside warm pool", r.seed)
			}
		case classDedup:
			if r.seed < dedupSeedBase || r.seed >= diskSeedBase {
				t.Fatalf("dedup seed %d outside its space", r.seed)
			}
			groupSize[r.seed]++
		case classDisk:
			if r.seed < diskSeedBase {
				t.Fatalf("disk seed %d outside its space", r.seed)
			}
			if diskSeeds[r.seed] {
				t.Fatalf("disk seed %d repeats: every disk request must pay a fresh durable read", r.seed)
			}
			diskSeeds[r.seed] = true
		}
	}
	if counts != [numClasses]int{10, 50, 30, 10} {
		t.Fatalf("class counts %v, want [10 50 30 10]", counts)
	}
	// 30 dedup requests in groups of 8: sizes 8,8,8,6.
	for seed, n := range groupSize {
		if n > 8 {
			t.Errorf("dedup group %d has %d members, want <= 8", seed, n)
		}
	}
	if len(groupSize) != 4 {
		t.Errorf("%d dedup groups, want 4", len(groupSize))
	}
}

// TestBuildScheduleDeterministic: the same seed yields the same schedule, a
// different seed a different interleaving.
func TestBuildScheduleDeterministic(t *testing.T) {
	weights := [numClasses]int{1, 1, 1}
	a := buildSchedule(60, weights, 2, 4, rand.New(rand.NewSource(1)))
	b := buildSchedule(60, weights, 2, 4, rand.New(rand.NewSource(1)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := buildSchedule(60, weights, 2, 4, rand.New(rand.NewSource(2)))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different shuffle seeds produced identical schedules")
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(lat, 0.50); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := percentile(lat, 0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

// TestEvalSLOs: each gate trips independently and Pass is their conjunction.
func TestEvalSLOs(t *testing.T) {
	r := &report{Requests: 100, Errors: 0, RowsPerSec: 500,
		Overall: classStats{P50: 10 * time.Millisecond, P99: 90 * time.Millisecond}}
	r.evalSLOs(20*time.Millisecond, 100*time.Millisecond, 0, 100, 0)
	if !r.Pass || len(r.SLOs) != 4 {
		t.Fatalf("healthy report failed: %+v", r.SLOs)
	}
	r = &report{Requests: 100, Errors: 3, RowsPerSec: 500,
		Overall: classStats{P50: 10 * time.Millisecond, P99: 90 * time.Millisecond}}
	r.evalSLOs(0, 0, 0, 0, 0.01)
	if r.Pass {
		t.Fatal("error-rate gate did not trip at 3% > 1%")
	}
	r = &report{Requests: 100, RowsPerSec: 50,
		Overall: classStats{P99: 200 * time.Millisecond}}
	r.evalSLOs(0, 100*time.Millisecond, 0, 100, 0)
	var tripped int
	for _, s := range r.SLOs {
		if !s.OK {
			tripped++
		}
	}
	if r.Pass || tripped != 2 {
		t.Fatalf("want p99 + rows gates tripped, got %+v", r.SLOs)
	}

	// The disk-class gate reads its own percentile, not the overall one.
	r = &report{Requests: 100, PerClass: map[string]classStats{
		classDisk.String(): {Requests: 10, P99: 80 * time.Millisecond},
	}}
	r.evalSLOs(0, 0, 50*time.Millisecond, 0, 0)
	if r.Pass {
		t.Fatal("disk-p99 gate did not trip at 80ms > 50ms")
	}
	r = &report{Requests: 100, PerClass: map[string]classStats{
		classDisk.String(): {Requests: 10, P99: 30 * time.Millisecond},
	}}
	r.evalSLOs(0, 0, 50*time.Millisecond, 0, 0)
	if !r.Pass {
		t.Fatalf("disk-p99 gate tripped at 30ms <= 50ms: %+v", r.SLOs)
	}
}
