// Command netsweep sweeps one network dimension around a Table 2 operating
// point and reports how the QUIC-vs-TCP gap — and the share of users who
// would notice it — changes, locating the noticeability crossover the
// paper's conclusion describes ("if network speeds increase, the difficulty
// of spotting a difference rises"). Built on the public qoe SDK's Sweep
// facade; Ctrl-C cancels between sweep steps.
//
// Usage:
//
//	netsweep [-dim speed|bandwidth|rtt|loss] [-base LTE] [-a QUIC] [-b TCP] [-values 0.25,0.5,1,2,4]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/pkg/qoe"
)

func main() {
	dimName := flag.String("dim", "speed", "dimension: speed, bandwidth (Mbps), rtt (ms), loss (fraction)")
	baseName := flag.String("base", "LTE", "base network: DSL, LTE, DA2GC, MSS")
	protoA := flag.String("a", "QUIC", "stack A (supposedly faster)")
	protoB := flag.String("b", "TCP", "stack B")
	valuesArg := flag.String("values", "0.25,0.5,1,2,4", "comma-separated sweep values")
	reps := flag.Int("reps", 3, "repetitions per site and step")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	switch *dimName {
	case "speed", "bandwidth", "rtt", "loss":
	default:
		fmt.Fprintf(os.Stderr, "netsweep: unknown dimension %q\n", *dimName)
		os.Exit(2)
	}
	validBase := false
	for _, name := range qoe.NetworkNames() {
		if name == *baseName {
			validBase = true
		}
	}
	if !validBase {
		fmt.Fprintf(os.Stderr, "netsweep: unknown network %q (have: %v)\n", *baseName, qoe.NetworkNames())
		os.Exit(2)
	}

	var values []float64
	for _, s := range strings.Split(*valuesArg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsweep: bad value %q: %v\n", s, err)
			os.Exit(2)
		}
		values = append(values, v)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := qoe.Sweep(ctx, qoe.SweepRequest{
		Dimension: *dimName,
		Base:      *baseName,
		ProtoA:    *protoA,
		ProtoB:    *protoB,
		Values:    values,
		Reps:      *reps,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsweep:", err)
		os.Exit(1)
	}
	res.Render(os.Stdout)
	if v, ok := res.Crossover(0.55); ok {
		fmt.Printf("\nnoticeability crossover (< 55%% of the panel votes a side): %s = %g\n", res.Dimension, v)
	} else {
		fmt.Printf("\nno noticeability crossover within the swept range\n")
	}
}
