// Command benchdiff compares two BENCH_*.json baseline files (the schema
// this repository records at each PR) and prints per-benchmark ratios, so a
// perf PR's claims can be checked with one command:
//
//	go run ./tools/benchdiff BENCH_pr2.json BENCH_pr3.json
//
// Ratios are new/old: below 1.0 is faster (or fewer allocations). Benchmarks
// present in only one file are listed separately.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchFile mirrors the BENCH_*.json schema.
type benchFile struct {
	PR         int     `json:"pr"`
	Date       string  `json:"date"`
	Go         string  `json:"go"`
	CPU        string  `json:"cpu"`
	Benchtime  string  `json:"benchtime"`
	Note       string  `json:"note,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	VotesPerOp  float64 `json:"votes_per_op,omitempty"`
}

func (e entry) key() string { return e.Pkg + "." + e.Name }

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func ratio(new, old float64) string {
	if old == 0 {
		return "    -"
	}
	return fmt.Sprintf("%5.2f", new/old)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: benchdiff OLD.json NEW.json\n")
		os.Exit(2)
	}
	oldF, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	newF, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if oldF.CPU != newF.CPU {
		fmt.Printf("note: different CPUs (%q vs %q); compare ratios with care\n", oldF.CPU, newF.CPU)
	}

	newByKey := make(map[string]entry, len(newF.Benchmarks))
	for _, e := range newF.Benchmarks {
		newByKey[e.key()] = e
	}

	fmt.Printf("%-44s %14s %14s %7s %7s\n", "benchmark (pr"+itoa(oldF.PR)+" -> pr"+itoa(newF.PR)+")",
		"old ns/op", "new ns/op", "ns x", "alloc x")
	matched := make(map[string]bool)
	for _, o := range oldF.Benchmarks {
		n, ok := newByKey[o.key()]
		if !ok {
			continue
		}
		matched[o.key()] = true
		fmt.Printf("%-44s %14.0f %14.0f %7s %7s\n",
			o.Name, o.NsPerOp, n.NsPerOp, ratio(n.NsPerOp, o.NsPerOp), ratio(n.AllocsPerOp, o.AllocsPerOp))
	}
	for _, o := range oldF.Benchmarks {
		if !matched[o.key()] {
			fmt.Printf("%-44s only in %s\n", o.Name, os.Args[1])
		}
	}
	for _, n := range newF.Benchmarks {
		if !matched[n.key()] {
			fmt.Printf("%-44s only in %s (%0.f ns/op)\n", n.Name, os.Args[2], n.NsPerOp)
		}
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
