package repro_test

// Public-surface guard: the commands and examples are the repository's
// public face, and since the pkg/qoe SDK carve-out they must consume the
// system exclusively through it. This test fails the build the moment a
// cmd/ or examples/ file imports repro/internal/... directly — the
// compile-time equivalent of Go's internal-package rule, applied one module
// boundary early so the SDK surface stays honest before the repo is ever
// split.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

func TestPublicSurfaceImportsNoInternals(t *testing.T) {
	checked := 0
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			checked++
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(p, "repro/internal/") || p == "repro/internal" {
					t.Errorf("%s imports %s — cmd/ and examples/ must use repro/pkg/qoe only", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if checked < 8 {
		t.Fatalf("guard walked only %d files — cmd/ or examples/ missing?", checked)
	}
}
