// Quickstart: load one website under every Table 1 protocol on DSL and
// compare the visual metrics — the one-minute tour of the testbed API.
package main

import (
	"fmt"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/webpage"
)

func main() {
	site := webpage.ByName("wikipedia.org")
	net := simnet.DSL

	fmt.Printf("Loading %s (%d objects, %.0f KB, %d hosts) over %s\n\n",
		site.Name, len(site.Objects), float64(site.TotalBytes())/1024, site.HostCount(), net.Name)
	fmt.Printf("%-9s %9s %9s %9s %9s %6s\n", "Protocol", "FVC", "SI", "LVC", "PLT", "retx")
	for _, name := range core.ProtocolNames() {
		res := browser.Load(site, browser.Config{
			Network: net,
			Proto:   core.MustProtocol(name, net),
			Seed:    42,
		})
		r := res.Report
		fmt.Printf("%-9s %9s %9s %9s %9s %6d\n", name,
			r.FVC.Round(time.Millisecond), r.SI.Round(time.Millisecond),
			r.LVC.Round(time.Millisecond), r.PLT.Round(time.Millisecond),
			res.Retransmissions)
	}
	fmt.Println("\nQUIC's 1-RTT handshake shows up directly in FVC; on a clean, fast")
	fmt.Println("network the differences stay well under half a second — which is why")
	fmt.Println("the paper's users mostly could not tell the stacks apart on DSL.")
}
