// Quickstart: the one-minute tour of the public qoe SDK. First load one
// website under every Table 1 protocol on DSL and compare the visual
// metrics; then run the configuration tables through the streaming Session
// API — the same context-aware, sink-driven entry point every experiment,
// command, and service integration uses:
//
//	sess, _ := qoe.NewSession(qoe.WithScenarios("table1", "table2"))
//	summary, _ := sess.Run(ctx, qoe.TextSink(os.Stdout))
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/pkg/qoe"
)

func main() {
	ctx := context.Background()
	site, net := "wikipedia.org", "DSL"

	fmt.Printf("Loading %s over %s under every Table 1 stack\n\n", site, net)
	fmt.Printf("%-9s %9s %9s %9s %9s %6s\n", "Protocol", "FVC", "SI", "LVC", "PLT", "retx")
	for _, name := range qoe.ProtocolNames() {
		res, err := qoe.LoadPage(qoe.PageLoad{Site: site, Network: net, Protocol: name, Seed: 42})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9s %9s %9s %9s %9s %6d\n", name,
			res.FVC.Round(time.Millisecond), res.SI.Round(time.Millisecond),
			res.LVC.Round(time.Millisecond), res.PLT.Round(time.Millisecond),
			res.Retransmissions)
	}
	fmt.Println("\nQUIC's 1-RTT handshake shows up directly in FVC; on a clean, fast")
	fmt.Println("network the differences stay well under half a second — which is why")
	fmt.Println("the paper's users mostly could not tell the stacks apart on DSL.")

	// The Session API: select experiments, run them against one shared
	// testbed, and stream the results to a sink. TextSink renders the
	// classic tables; StreamSink would emit schema_version 1 NDJSON rows.
	fmt.Println()
	sess, err := qoe.NewSession(qoe.WithScenarios("table1", "table2"), qoe.WithSeed(1))
	if err != nil {
		panic(err)
	}
	summary, err := sess.Run(ctx, qoe.TextSink(os.Stdout))
	if err != nil {
		panic(err)
	}
	fmt.Printf("session ran %d experiments in %v\n", summary.Experiments, summary.Total.Round(time.Millisecond))
}
