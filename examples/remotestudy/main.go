// Example remotestudy: serve studies over HTTP and consume them remotely.
//
// The paper's QoE studies ran as a hosted service many participants hit at
// once. This example reproduces that shape end to end in one process: it
// boots the qoed serving engine on a loopback port, then drives it with the
// SDK's HTTP client — browsing the catalog, streaming a study, watching the
// result cache turn a repeat into a zero-simulation replay, and fanning out
// concurrent identical requests that the server deduplicates onto a single
// simulation.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/pkg/qoe"
	"repro/pkg/qoe/qoed"
)

func main() {
	ctx := context.Background()

	// 1. Boot the serving engine on a free loopback port. qoed.Server is an
	// http.Handler, so embedding it is ordinary net/http wiring.
	srv := qoed.New(qoed.Config{Workers: 2, QueueDepth: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("qoed serving on %s\n", base)

	client := qoe.NewClient(base, nil)

	// 2. Browse the catalog: what can this daemon run?
	cat, err := client.Catalog(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d experiments, %d networks, %d scenario profiles, scales %v\n",
		len(cat.Experiments), len(cat.Networks), len(cat.Scenarios), cat.Scales)

	// 3. Stream a study cold: the server simulates and broadcasts live.
	req := qoe.RunRequest{Experiments: []string{"table1", "table2"}, Scale: qoe.ScaleQuick, Seed: 1}
	start := time.Now()
	cold, err := client.RunBytes(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	coldTime := time.Since(start)
	fmt.Printf("cold run: %d NDJSON bytes in %v\n", len(cold), coldTime.Round(time.Microsecond))

	// 4. Repeat it: the result cache replays the identical bytes with zero
	// simulation. Determinism is what makes this sound — same tuple, same
	// bytes, always.
	start = time.Now()
	warm, err := client.RunBytes(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached replay: identical=%v in %v\n", string(warm) == string(cold), time.Since(start).Round(time.Microsecond))

	// 5. Fan out concurrent identical requests for a fresh tuple: the
	// server's singleflight table collapses them onto ONE simulation and
	// every client still receives the full identical stream.
	fresh := qoe.RunRequest{Experiments: []string{"ext-0rtt"}, Scale: qoe.ScaleQuick, Seed: 42}
	const participants = 6
	var wg sync.WaitGroup
	streams := make([][]byte, participants)
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := client.RunBytes(ctx, fresh)
			if err != nil {
				log.Fatal(err)
			}
			streams[i] = b
		}(i)
	}
	wg.Wait()
	identical := true
	for _, s := range streams[1:] {
		identical = identical && string(s) == string(streams[0])
	}
	fmt.Printf("%d concurrent participants, all streams identical=%v\n", participants, identical)

	// 6. Ask the daemon how much work all that actually cost.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var met struct {
		Started  int64 `json:"runs_started"`
		Deduped  int64 `json:"runs_deduped"`
		CacheHit int64 `json:"runs_cache_hit"`
	}
	if err := json.Unmarshal(raw, &met); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server metrics: %d simulations for %d requests (%d deduped, %d cache hits)\n",
		met.Started, 2+participants, met.Deduped, met.CacheHit)

	// 7. Drain gracefully: in-flight runs finish, the cache stays warm.
	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Fatal(err)
	}
	httpSrv.Shutdown(drainCtx)
	fmt.Println("drained cleanly")
}
