// inflight: the paper's long-tail story — compare all five stacks on the
// two emulated in-flight WiFi networks (air-to-ground cellular and
// satellite), where protocol design differences actually become visible,
// including the DA2GC inversion (stock TCP beating the tuned TCP+) and
// BBR's advantage under random loss. Every load goes through the SDK's
// LoadPage facade over the lab corpus.
package main

import (
	"fmt"
	"time"

	"repro/pkg/qoe"
)

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func main() {
	nets := map[string]qoe.NetworkInfo{}
	for _, n := range qoe.Networks() {
		nets[n.Name] = n
	}
	for _, netName := range []string{"DA2GC", "MSS"} {
		info := nets[netName]
		fmt.Printf("%s  (%.3f Mbps, %v RTT, %.1f%% loss)\n",
			info.Name, float64(info.DownlinkBps)/1e6, info.MinRTT, info.LossRate*100)
		fmt.Printf("  %-9s %10s %10s %8s\n", "Protocol", "mean SI", "mean FVC", "retx")
		for _, proto := range qoe.ProtocolNames() {
			var sis, fvcs, retx []float64
			for _, site := range qoe.LabSites() {
				for rep := 0; rep < 3; rep++ {
					res, err := qoe.LoadPage(qoe.PageLoad{
						Site: site.Name, Network: netName, Protocol: proto,
						Seed: int64(rep)*131 + 5, MaxLoadTime: 4 * time.Minute,
					})
					if err != nil {
						panic(err)
					}
					if res.Complete {
						sis = append(sis, res.SI.Seconds())
						fvcs = append(fvcs, res.FVC.Seconds())
						retx = append(retx, float64(res.Retransmissions))
					}
				}
			}
			fmt.Printf("  %-9s %9.1fs %9.1fs %8.0f\n",
				proto, mean(sis), mean(fvcs), mean(retx))
		}
		fmt.Println()
	}
	fmt.Println("DA2GC: the tuned TCP+ loses to stock TCP — its IW32 bursts overflow")
	fmt.Println("the thin 0.468 Mbps queue and retransmissions explode, the inversion")
	fmt.Println("the paper observes. On MSS the bandwidth headroom reverts it, and the")
	fmt.Println("loss-agnostic BBR variants pull far ahead.")
}
