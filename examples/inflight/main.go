// inflight: the paper's long-tail story — compare all five stacks on the
// two emulated in-flight WiFi networks (air-to-ground cellular and
// satellite), where protocol design differences actually become visible,
// including the DA2GC inversion (stock TCP beating the tuned TCP+) and
// BBR's advantage under random loss.
package main

import (
	"fmt"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/webpage"
)

func main() {
	sites := webpage.LabCorpus()
	for _, net := range []simnet.NetworkConfig{simnet.DA2GC, simnet.MSS} {
		fmt.Printf("%s  (%.3f Mbps, %v RTT, %.1f%% loss)\n",
			net.Name, float64(net.DownlinkBps)/1e6, net.MinRTT, net.LossRate*100)
		fmt.Printf("  %-9s %10s %10s %8s\n", "Protocol", "mean SI", "mean FVC", "retx")
		for _, name := range core.ProtocolNames() {
			var sis, fvcs, retx []float64
			for _, site := range sites {
				for rep := 0; rep < 3; rep++ {
					res := browser.Load(site, browser.Config{
						Network: net, Proto: core.MustProtocol(name, net),
						Seed: int64(rep)*131 + 5, MaxLoadTime: 4 * time.Minute,
					})
					if res.Report.Complete {
						sis = append(sis, res.Report.SI.Seconds())
						fvcs = append(fvcs, res.Report.FVC.Seconds())
						retx = append(retx, float64(res.Retransmissions))
					}
				}
			}
			fmt.Printf("  %-9s %9.1fs %9.1fs %8.0f\n",
				name, stats.Mean(sis), stats.Mean(fvcs), stats.Mean(retx))
		}
		fmt.Println()
	}
	fmt.Println("DA2GC: the tuned TCP+ loses to stock TCP — its IW32 bursts overflow")
	fmt.Println("the thin 0.468 Mbps queue and retransmissions explode, the inversion")
	fmt.Println("the paper observes. On MSS the bandwidth headroom reverts it, and the")
	fmt.Println("loss-agnostic BBR variants pull far ahead.")
}
