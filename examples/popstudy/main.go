// popstudy: put a synthetic crowd of 200,000 µWorkers on one A/B comparison
// per scenario-library network and watch the paper's central gradient emerge
// at population scale — the faster the network, the fewer people can tell
// QUIC from stock TCP. Every vote streams through online aggregators
// (internal/population), so memory stays flat no matter the crowd size.
package main

import (
	"fmt"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/simnet"
	"repro/internal/study"
	"repro/internal/webpage"
)

func main() {
	site := webpage.ByName("etsy.com")
	const crowd = 200_000

	fmt.Printf("QUIC vs. TCP on %s, %d synthetic µWorkers per scenario\n\n", site.Name, crowd)
	fmt.Printf("%-16s %10s %10s %6s %22s\n", "Scenario", "SI(QUIC)", "SI(TCP)", "gap", "noticed [99% CI]")
	for _, net := range simnet.AllNetworks() {
		load := func(proto string) browser.Result {
			return browser.Load(site, browser.Config{
				Network: net, Proto: core.MustProtocol(proto, net),
				Seed: 17, MaxLoadTime: 4 * time.Minute,
			})
		}
		quic, tcp := load("QUIC"), load("TCP")

		cell := population.ABCell{
			Label:   net.Name,
			Left:    quic.Report,
			Right:   tcp.Report,
			AOnLeft: true,
		}
		res, err := population.RunAB([]population.ABCell{cell}, population.Config{
			Group:               study.Microworker,
			Participants:        crowd,
			VotesPerParticipant: 1,
			Seed:                core.DeriveSeed(17, net.Name),
		})
		if err != nil {
			panic(err)
		}
		noticed := res.Cells[0].Noticed()
		ci, err := noticed.CI(0.99)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s %10s %10s %5.2fx   %5.1f%% [%5.1f,%5.1f]%%\n",
			net.Name, quic.Report.SI.Round(10*time.Millisecond), tcp.Report.SI.Round(10*time.Millisecond),
			float64(tcp.Report.SI)/float64(quic.Report.SI),
			100*ci.Point, 100*ci.Lo, 100*ci.Hi)
	}
	fmt.Println("\nWith 200k voters the 99% intervals shrink to fractions of a point:")
	fmt.Println("at population scale the paper's quick-networks-hide-the-protocol")
	fmt.Println("effect is not a sample-size artifact.")
}
