// popstudy: put a synthetic crowd of 200,000 µWorkers on one A/B comparison
// per network — the four Table 2 operating points plus the whole scenario
// library — and watch the paper's central gradient emerge at population
// scale: the faster the network, the fewer people can tell QUIC from stock
// TCP. CompareAB streams every vote through online aggregators, so memory
// stays flat no matter the crowd size.
package main

import (
	"context"
	"fmt"
	"time"

	"repro/pkg/qoe"
)

func main() {
	ctx := context.Background()
	site := "etsy.com"
	const crowd = 200_000

	fmt.Printf("QUIC vs. TCP on %s, %d synthetic µWorkers per scenario\n\n", site, crowd)
	fmt.Printf("%-16s %10s %10s %6s %22s\n", "Scenario", "SI(QUIC)", "SI(TCP)", "gap", "noticed [99% CI]")
	for _, net := range append(qoe.Networks(), qoe.Scenarios()...) {
		out, err := qoe.CompareAB(ctx, qoe.ABStudy{
			Site:       site,
			Network:    net.Name,
			ProtoA:     "QUIC",
			ProtoB:     "TCP",
			Recordings: 1,
			Voters:     crowd,
			Seed:       qoe.DeriveSeed(17, net.Name),
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s %10s %10s %5.2fx   %5.1f%% [%5.1f,%5.1f]%%\n",
			out.Network, out.SIA.Round(10*time.Millisecond), out.SIB.Round(10*time.Millisecond),
			float64(out.SIB)/float64(out.SIA),
			100*out.Noticed.Point, 100*out.Noticed.Lo, 100*out.Noticed.Hi)
	}
	fmt.Println("\nWith 200k voters the 99% intervals shrink to fractions of a point:")
	fmt.Println("at population scale the paper's quick-networks-hide-the-protocol")
	fmt.Println("effect is not a sample-size artifact.")
}
