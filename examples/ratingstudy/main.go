// ratingstudy: run a miniature "do users care?" study through the SDK's
// RatePanel facade — have a simulated crowd rate single videos of the same
// site under all five stacks (Study 2 of the paper) and test the protocol
// effect with a one-way ANOVA.
package main

import (
	"context"
	"fmt"

	"repro/pkg/qoe"
)

func main() {
	out, err := qoe.RatePanel(context.Background(), qoe.RatingPanel{
		Site:        "nytimes.com",
		Network:     "LTE",
		Environment: "Free Time",
		Voters:      150,
		Seed:        3,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("Rating %s over %s (%s framing), %d crowd votes per stack\n\n",
		out.Site, out.Network, out.Environment, 150)
	for _, r := range out.Ratings {
		fmt.Printf("%-9s  mean %5.1f  99%% CI [%5.1f, %5.1f]  -> %q\n",
			r.Protocol, r.Mean.Point, r.Mean.Lo, r.Mean.Hi, r.Label)
	}

	fmt.Printf("\nANOVA across the five stacks: %v\n", out.ANOVA)
	switch {
	case out.ANOVA.Significant(0.99):
		fmt.Println("-> significant for THIS single site: this is the paper's per-website")
		fmt.Println("   drill-down ('where it makes a difference'). Pooled across all")
		fmt.Println("   sites (qoebench fig5), the protocol effect disappears at 99%.")
	case out.ANOVA.Significant(0.90):
		fmt.Println("-> significant only at the 90% level, matching the paper's marginal cases")
	default:
		fmt.Println("-> not significant: users do not care which stack delivered the page")
	}
}
