// ratingstudy: run a miniature "do users care?" study — have a simulated
// crowd rate single videos of the same site under all five stacks (Study 2
// of the paper) and test the protocol effect with a one-way ANOVA.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/participant"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/study"
	"repro/internal/webpage"
)

func main() {
	site := webpage.ByName("nytimes.com")
	net := simnet.LTE
	env := study.FreeTime
	rng := rand.New(rand.NewSource(3))

	fmt.Printf("Rating %s over %s (%v framing), 150 crowd votes per stack\n\n", site.Name, net.Name, env)
	var groups [][]float64
	for _, name := range core.ProtocolNames() {
		res := browser.Load(site, browser.Config{Network: net, Proto: core.MustProtocol(name, net), Seed: 11})
		var votes []float64
		for i := 0; i < 150; i++ {
			m := participant.New(study.Microworker, rng)
			speed, _ := m.Rate(res.Report, env)
			votes = append(votes, speed)
		}
		ci, err := stats.MeanCI(votes, 0.99)
		if err != nil {
			panic(err)
		}
		groups = append(groups, votes)
		fmt.Printf("%-9s  mean %5.1f  99%% CI [%5.1f, %5.1f]  -> %q\n",
			name, ci.Point, ci.Lo, ci.Hi, study.ScaleLabel(ci.Point))
	}

	an, err := stats.OneWayANOVA(groups...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nANOVA across the five stacks: %v\n", an)
	switch {
	case an.Significant(0.99):
		fmt.Println("-> significant for THIS single site: this is the paper's per-website")
		fmt.Println("   drill-down ('where it makes a difference'). Pooled across all")
		fmt.Println("   sites (qoebench fig5), the protocol effect disappears at 99%.")
	case an.Significant(0.90):
		fmt.Println("-> significant only at the 90% level, matching the paper's marginal cases")
	default:
		fmt.Println("-> not significant: users do not care which stack delivered the page")
	}
}
