// abstudy: run a miniature "do users notice?" study — record typical videos
// for QUIC vs. stock TCP on two networks, compose side-by-side stimuli, and
// let a simulated crowd vote (Study 1 of the paper).
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/httpsim"
	"repro/internal/participant"
	"repro/internal/quicsim"
	"repro/internal/simnet"
	"repro/internal/study"
	"repro/internal/tcpsim"
	"repro/internal/video"
	"repro/internal/webpage"
)

func main() {
	site := webpage.ByName("etsy.com")
	rng := rand.New(rand.NewSource(7))

	for _, net := range []simnet.NetworkConfig{simnet.DSL, simnet.MSS} {
		// Record both stacks a few times and pick the typical video each.
		quicRecs := video.Record(site, net, httpsim.QUICStack{Opts: quicsim.Stock()}, 5, 100)
		tcpRecs := video.Record(site, net, httpsim.TCPStack{Opts: tcpsim.Stock()}, 5, 100)
		quic, err := video.SelectTypical(quicRecs)
		if err != nil {
			panic(err)
		}
		tcp, err := video.SelectTypical(tcpRecs)
		if err != nil {
			panic(err)
		}
		ab, err := video.NewABVideo(quic, tcp) // QUIC left, TCP right
		if err != nil {
			panic(err)
		}

		votes := map[study.Vote]int{}
		replays := 0
		const n = 200
		for i := 0; i < n; i++ {
			m := participant.New(study.Microworker, rng)
			v, _, rep := m.ABVote(ab.Left.Report, ab.Right.Report)
			votes[v]++
			replays += rep
		}
		fmt.Printf("%s on %-5s  SI %8s vs %8s   ->  QUIC %2.0f%%  no-diff %2.0f%%  TCP %2.0f%%  (avg replays %.2f)\n",
			site.Name, net.Name,
			quic.Report.SI.Round(10*time.Millisecond), tcp.Report.SI.Round(10*time.Millisecond),
			100*float64(votes[study.VoteLeft])/n,
			100*float64(votes[study.VoteNoDifference])/n,
			100*float64(votes[study.VoteRight])/n,
			float64(replays)/n)
	}
	fmt.Println("\nQUIC vs. stock TCP is the one pairing the paper's participants could")
	fmt.Println("spot even on DSL (the full harness shows the other pairings drowning")
	fmt.Println("in 'no difference' there); on the satellite link the gap is seconds.")
}
