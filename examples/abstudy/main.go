// abstudy: run a miniature "do users notice?" study through the SDK's
// CompareAB facade — record typical videos for QUIC vs. stock TCP on two
// networks, compose the side-by-side stimulus, and let a simulated crowd
// vote (Study 1 of the paper).
package main

import (
	"context"
	"fmt"
	"time"

	"repro/pkg/qoe"
)

func main() {
	ctx := context.Background()
	for _, net := range []string{"DSL", "MSS"} {
		out, err := qoe.CompareAB(ctx, qoe.ABStudy{
			Site:    "etsy.com",
			Network: net,
			ProtoA:  "QUIC",
			ProtoB:  "TCP",
			Voters:  200,
			Seed:    7,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s on %-5s  SI %8s vs %8s   ->  QUIC %2.0f%%  no-diff %2.0f%%  TCP %2.0f%%  (avg replays %.2f)\n",
			out.Site, out.Network,
			out.SIA.Round(10*time.Millisecond), out.SIB.Round(10*time.Millisecond),
			100*out.ShareA, 100*out.ShareNone, 100*out.ShareB, out.MeanReplays)
	}
	fmt.Println("\nQUIC vs. stock TCP is the one pairing the paper's participants could")
	fmt.Println("spot even on DSL (the full harness shows the other pairings drowning")
	fmt.Println("in 'no difference' there); on the satellite link the gap is seconds.")
}
